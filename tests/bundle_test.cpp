// Tests for the shared binary I/O layer (io::Writer/io::Reader), the
// io::Bundle container, extractor state serialization, and the
// bundle-backed pipeline reload path: a pipeline trained once and saved
// must reload in a fresh object with bitwise-identical scores, at any
// thread count, with no retraining.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "eedn/serialize.hpp"
#include "eedn/trinary.hpp"
#include "extract/registry.hpp"
#include "io/bundle.hpp"
#include "io/io.hpp"
#include "nn/sequential.hpp"
#include "svm/serialize.hpp"
#include "tn/model_io.hpp"
#include "vision/image.hpp"

namespace pcnn {
namespace {

// --- io::Writer / io::Reader ---------------------------------------------

TEST(Io, PrimitiveRoundTripIsBitwise) {
  std::ostringstream out;
  io::Writer w(out);
  ASSERT_TRUE(w.header("TEST", 3).ok());
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(std::uint64_t{1} << 60);
  w.i32(-123456789);
  w.f32(0.1f);  // not exactly representable: bit pattern must survive
  w.f64(-2.718281828459045);
  w.str("chunky bacon");
  ASSERT_TRUE(w.status().ok());

  std::istringstream in(out.str());
  io::Reader r(in);
  std::uint32_t version = 0;
  ASSERT_TRUE(r.header("TEST", 3, &version).ok());
  EXPECT_EQ(version, 3u);
  std::uint8_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t c = 0;
  std::int32_t d = 0;
  float e = 0.0f;
  double f = 0.0;
  std::string s;
  r.u8(a);
  r.u32(b);
  r.u64(c);
  r.i32(d);
  r.f32(e);
  r.f64(f);
  r.str(s);
  ASSERT_TRUE(r.status().ok());
  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, std::uint64_t{1} << 60);
  EXPECT_EQ(d, -123456789);
  EXPECT_EQ(e, 0.1f);
  EXPECT_EQ(f, -2.718281828459045);
  EXPECT_EQ(s, "chunky bacon");
}

TEST(Io, WriterStatusIsSticky) {
  std::ostringstream out;
  out.setstate(std::ios::badbit);
  io::Writer w(out);
  const Status first = w.u32(1);
  EXPECT_FALSE(first.ok());
  // Later calls no-op and return the latched error.
  const Status second = w.f32(2.0f);
  EXPECT_EQ(second.code(), first.code());
  EXPECT_EQ(w.status().code(), first.code());
}

TEST(Io, ReaderStatusIsSticky) {
  std::istringstream in("");  // empty: every read fails
  io::Reader r(in);
  std::uint32_t v = 0;
  EXPECT_FALSE(r.u32(v).ok());
  std::uint8_t b = 0;
  EXPECT_EQ(r.u8(b).code(), r.status().code());
  EXPECT_FALSE(r.status().ok());
}

TEST(Io, BadMagicIsDataLoss) {
  std::ostringstream out;
  io::Writer w(out);
  ASSERT_TRUE(w.header("TEST", 1).ok());
  std::istringstream in(out.str());
  io::Reader r(in);
  EXPECT_EQ(r.header("NOPE", 1).code(), StatusCode::kDataLoss);
}

TEST(Io, NewerVersionIsOutOfRange) {
  std::ostringstream out;
  io::Writer w(out);
  ASSERT_TRUE(w.header("TEST", 7).ok());
  std::istringstream in(out.str());
  io::Reader r(in);
  EXPECT_EQ(r.header("TEST", 2).code(), StatusCode::kOutOfRange);
}

TEST(Io, ChunkIterationDistinguishesCleanEnd) {
  std::ostringstream out;
  io::Writer w(out);
  w.header("TEST", 1);
  w.chunk("AAAA", "first");
  w.chunk("BBBB", std::string("\x00\xff\x7f", 3));  // binary-safe payload
  ASSERT_TRUE(w.status().ok());

  std::istringstream in(out.str());
  io::Reader r(in);
  ASSERT_TRUE(r.header("TEST", 1).ok());
  io::Reader::Chunk chunk;
  bool end = false;
  ASSERT_TRUE(r.nextChunk(chunk, end).ok());
  ASSERT_FALSE(end);
  EXPECT_EQ(chunk.tag, "AAAA");
  EXPECT_EQ(chunk.payload, "first");
  ASSERT_TRUE(r.nextChunk(chunk, end).ok());
  ASSERT_FALSE(end);
  EXPECT_EQ(chunk.tag, "BBBB");
  EXPECT_EQ(chunk.payload, std::string("\x00\xff\x7f", 3));
  ASSERT_TRUE(r.nextChunk(chunk, end).ok());
  EXPECT_TRUE(end);
}

TEST(Io, OversizedDeclaredChunkLengthIsOutOfRange) {
  // A corrupt length field must be rejected before it drives an
  // allocation: declare kMaxChunkBytes + 1 with no payload behind it.
  std::ostringstream out;
  io::Writer w(out);
  w.header("TEST", 1);
  w.bytes("HUGE", 4);
  w.u64(io::kMaxChunkBytes + 1);
  ASSERT_TRUE(w.status().ok());

  std::istringstream in(out.str());
  io::Reader r(in);
  ASSERT_TRUE(r.header("TEST", 1).ok());
  io::Reader::Chunk chunk;
  bool end = false;
  EXPECT_EQ(r.nextChunk(chunk, end).code(), StatusCode::kOutOfRange);
}

TEST(Io, TruncatedChunkPayloadIsDataLoss) {
  std::ostringstream out;
  io::Writer w(out);
  w.header("TEST", 1);
  w.bytes("TRNC", 4);
  w.u64(100);  // declares 100 bytes ...
  w.bytes("short", 5);  // ... delivers 5
  ASSERT_TRUE(w.status().ok());

  std::istringstream in(out.str());
  io::Reader r(in);
  ASSERT_TRUE(r.header("TEST", 1).ok());
  io::Reader::Chunk chunk;
  bool end = false;
  EXPECT_EQ(r.nextChunk(chunk, end).code(), StatusCode::kDataLoss);
}

TEST(Io, TornChunkHeaderIsDataLoss) {
  // Two bytes of a tag and then end of stream: not a clean end.
  std::ostringstream out;
  io::Writer w(out);
  w.header("TEST", 1);
  w.bytes("AB", 2);
  ASSERT_TRUE(w.status().ok());

  std::istringstream in(out.str());
  io::Reader r(in);
  ASSERT_TRUE(r.header("TEST", 1).ok());
  io::Reader::Chunk chunk;
  bool end = false;
  EXPECT_EQ(r.nextChunk(chunk, end).code(), StatusCode::kDataLoss);
  EXPECT_FALSE(end);
}

TEST(Io, PeekMagicRestoresStreamPosition) {
  std::istringstream in("PCNBrest of the stream");
  EXPECT_EQ(io::peekMagic(in), "PCNB");
  std::string word;
  in >> word;
  EXPECT_EQ(word, "PCNBrest");  // nothing consumed by the peek

  std::istringstream tiny("ab");
  EXPECT_EQ(io::peekMagic(tiny), "");
}

TEST(Io, Fnv1a64IsDeterministicAndHexRenders) {
  const std::uint64_t h1 = io::fnv1a64("partitioned");
  EXPECT_EQ(h1, io::fnv1a64("partitioned"));
  EXPECT_NE(h1, io::fnv1a64("Partitioned"));
  EXPECT_EQ(io::hashHex(h1).size(), 16u);
  EXPECT_EQ(io::hashHex(0), "0000000000000000");
}

// --- io::Bundle -----------------------------------------------------------

TEST(Bundle, RoundTripPreservesManifestAndChunksBitwise) {
  io::Bundle bundle;
  bundle.manifest().set(io::keys::kSpec, "parrot:4spike");
  bundle.manifest().set("custom_key", "custom value with spaces");
  bundle.setChunk(io::chunks::kSvmModel, std::string("\x00\x01\xfe\xff", 4));
  bundle.setChunk("zz_last", "payload");

  std::ostringstream out;
  ASSERT_TRUE(bundle.trySave(out).ok());

  std::istringstream in(out.str());
  StatusOr<io::Bundle> loaded = io::Bundle::tryLoad(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
  EXPECT_EQ(loaded.value().manifest().get(io::keys::kSpec), "parrot:4spike");
  EXPECT_EQ(loaded.value().manifest().get("custom_key"),
            "custom value with spaces");
  const std::string* svm = loaded.value().chunk(io::chunks::kSvmModel);
  ASSERT_NE(svm, nullptr);
  EXPECT_EQ(*svm, std::string("\x00\x01\xfe\xff", 4));
  EXPECT_TRUE(loaded.value().hasChunk("zz_last"));
  // The save stamped the content hash; the loaded copy must verify.
  EXPECT_TRUE(loaded.value().verifyContentHash().ok());
  EXPECT_EQ(loaded.value().contentHash(), bundle.contentHash());
}

TEST(Bundle, TamperedChunkFailsHashVerification) {
  io::Bundle bundle;
  bundle.setChunk("weights", "original bytes");
  std::ostringstream out;
  ASSERT_TRUE(bundle.trySave(out).ok());
  std::istringstream in(out.str());
  StatusOr<io::Bundle> loaded = io::Bundle::tryLoad(in);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().verifyContentHash().ok());
  loaded.value().setChunk("weights", "tampered bytes");
  EXPECT_EQ(loaded.value().verifyContentHash().code(), StatusCode::kDataLoss);
}

TEST(Bundle, UnrecordedHashIsFailedPrecondition) {
  io::Bundle bundle;
  bundle.setChunk("weights", "bytes");
  EXPECT_EQ(bundle.verifyContentHash().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Bundle, TruncatedFileIsDataLoss) {
  io::Bundle bundle;
  bundle.manifest().set(io::keys::kSpec, "hog");
  bundle.setChunk("weights", std::string(256, 'x'));
  std::ostringstream out;
  ASSERT_TRUE(bundle.trySave(out).ok());
  const std::string bytes = out.str();
  std::istringstream truncated(bytes.substr(0, bytes.size() / 2));
  StatusOr<io::Bundle> loaded = io::Bundle::tryLoad(truncated);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(Bundle, BadMagicIsDataLoss) {
  std::istringstream in("XXXXnot a bundle at all");
  StatusOr<io::Bundle> loaded = io::Bundle::tryLoad(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(Bundle, ManifestTypedAccessors) {
  io::Manifest manifest;
  manifest.set("count", "42");
  manifest.set("rate", "0.5");
  manifest.set("junk", "not-a-number");
  EXPECT_EQ(manifest.getInt("count").value(), 42);
  EXPECT_DOUBLE_EQ(manifest.getFloat("rate").value(), 0.5);
  EXPECT_EQ(manifest.getInt("absent").status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(manifest.getInt("junk").status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(manifest.get("absent", "fallback"), "fallback");
  EXPECT_EQ(manifest.find("absent"), nullptr);
}

// --- v1 text compatibility through the shared try* path -------------------

TEST(FormatCompat, SvmV1TextStillLoads) {
  std::istringstream in("pcnn-svm-v1 2\n1.0 1.0\n0.5\n0.25 -0.75\n");
  StatusOr<svm::LinearSvm> loaded = svm::tryLoadModel(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
  ASSERT_EQ(loaded.value().weights().size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.value().weights()[0], 0.25);
  EXPECT_DOUBLE_EQ(loaded.value().weights()[1], -0.75);

  // And the v1-loaded model re-saves as v2 binary, which round trips.
  std::stringstream v2;
  ASSERT_TRUE(svm::trySaveModel(loaded.value(), v2).ok());
  EXPECT_EQ(io::peekMagic(v2), "PSVM");
  StatusOr<svm::LinearSvm> again = svm::tryLoadModel(v2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().weights(), loaded.value().weights());
}

TEST(FormatCompat, TnV1TextStillLoads) {
  std::istringstream in("pcnn-tn-v1 1\ncore 0\nconn 0 2 3 5\nendcore\n");
  StatusOr<std::unique_ptr<tn::Network>> loaded = tn::tryLoadModel(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
  const tn::Network& net =
      static_cast<const tn::Network&>(*loaded.value());
  ASSERT_EQ(net.coreCount(), 1);
  EXPECT_TRUE(net.core(0).connection(0, 3));
  EXPECT_TRUE(net.core(0).connection(0, 5));
  EXPECT_FALSE(net.core(0).connection(0, 4));

  // v1-loaded model re-saves as v2 binary and keeps the crossbar.
  std::stringstream v2;
  ASSERT_TRUE(tn::trySaveModel(*loaded.value(), v2).ok());
  EXPECT_EQ(io::peekMagic(v2), "PTNM");
  StatusOr<std::unique_ptr<tn::Network>> again = tn::tryLoadModel(v2);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(static_cast<const tn::Network&>(*again.value())
                  .core(0)
                  .connection(0, 5));
}

TEST(FormatCompat, EednV1TextStillLoads) {
  pcnn::Rng rng(11);
  nn::Sequential net;
  net.add(std::make_unique<eedn::TrinaryDense>(2, 1, rng));
  std::istringstream in("pcnn-eedn-v1 1\nTrinaryDense 2 1\n0.5 -0.5\n0.25\n");
  const Status status = eedn::tryLoadNetwork(net, in);
  ASSERT_TRUE(status.ok()) << status.toString();
  const auto& layer = dynamic_cast<eedn::TrinaryDense&>(net.layer(0));
  EXPECT_EQ(layer.hiddenWeights(), (std::vector<float>{0.5f, -0.5f}));
  EXPECT_EQ(layer.biases(), (std::vector<float>{0.25f}));
}

TEST(FormatCompat, UnknownChunksAreSkipped) {
  // A v2 SVM stream carrying a chunk from the future: the loader must
  // skip it and find SVMW behind it (forward compatibility).
  std::ostringstream payload;
  io::Writer pw(payload);
  pw.u64(1);      // dim
  pw.f64(1.0);    // C
  pw.f64(1.0);    // biasScale
  pw.f64(0.5);    // bias
  pw.f64(2.0);    // weight
  ASSERT_TRUE(pw.status().ok());

  std::ostringstream out;
  io::Writer w(out);
  w.header("PSVM", 2);
  w.chunk("ZZZZ", "from a future format revision");
  w.chunk("SVMW", payload.str());
  ASSERT_TRUE(w.status().ok());

  std::istringstream in(out.str());
  StatusOr<svm::LinearSvm> loaded = svm::tryLoadModel(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
  EXPECT_DOUBLE_EQ(loaded.value().weights()[0], 2.0);
}

// --- extractor state ------------------------------------------------------

extract::ExtractorOptions tinyOptions(std::uint64_t seed = 21) {
  extract::ExtractorOptions options;
  options.windowCellsX = 4;  // 32x32-pixel windows: fast to extract
  options.windowCellsY = 4;
  options.seed = seed;
  return options;
}

TEST(ExtractorState, FixedFunctionRoundTrip) {
  auto& registry = extract::ExtractorRegistry::instance();
  auto hog = registry.create("hog", tinyOptions());
  EXPECT_FALSE(hog->hasTrainedState());
  std::stringstream state;
  ASSERT_TRUE(hog->trySaveState(state).ok());
  auto fresh = registry.create("hog", tinyOptions());
  EXPECT_TRUE(fresh->tryLoadState(state).ok());
}

TEST(ExtractorState, NameMismatchIsFailedPrecondition) {
  auto& registry = extract::ExtractorRegistry::instance();
  auto hog = registry.create("hog", tinyOptions());
  std::stringstream state;
  ASSERT_TRUE(hog->trySaveState(state).ok());
  auto other = registry.create("fixedpoint", tinyOptions());
  const Status status = other->tryLoadState(state);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ExtractorState, GeometryMismatchIsFailedPrecondition) {
  auto& registry = extract::ExtractorRegistry::instance();
  auto small = registry.create("hog", tinyOptions());
  std::stringstream state;
  ASSERT_TRUE(small->trySaveState(state).ok());
  auto big = registry.create("hog");  // default 8x16-cell window
  const Status status = big->tryLoadState(state);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ExtractorState, ParrotStateTransfersTrainedWeights) {
  auto& registry = extract::ExtractorRegistry::instance();
  auto trained = registry.create("parrot:exact", tinyOptions(21));
  EXPECT_TRUE(trained->hasTrainedState());
  trained->pretrain(300, 2, 0.01f);
  std::stringstream state;
  ASSERT_TRUE(trained->trySaveState(state).ok());

  // The target is constructed with a *different* RNG seed, so its initial
  // weights differ from the source's: feature equality below can only come
  // from the state transfer, not from identical initialization.
  auto target = registry.create("parrot:exact", tinyOptions(99));
  ASSERT_TRUE(target->tryLoadState(state).ok());

  vision::Image window(32, 32, 0.3f);
  for (int y = 8; y < 24; ++y) {
    for (int x = 12; x < 20; ++x) window.at(x, y) = 0.9f;
  }
  EXPECT_EQ(trained->windowFeatures(window), target->windowFeatures(window));
}

TEST(ExtractorState, NApproxRoundTripAndQuantizationMismatch) {
  auto& registry = extract::ExtractorRegistry::instance();
  auto coded = registry.create("napprox:4spike", tinyOptions());
  std::stringstream state;
  ASSERT_TRUE(coded->trySaveState(state).ok());

  auto same = registry.create("napprox:4spike", tinyOptions());
  EXPECT_TRUE(same->tryLoadState(state).ok());

  // A different quantization point is a different deployment artifact.
  std::stringstream replay(state.str());
  auto other = registry.create("napprox:64spike", tinyOptions());
  EXPECT_EQ(other->tryLoadState(replay).code(),
            StatusCode::kFailedPrecondition);
}

// --- pipeline bundles: train once, reload by name, score bitwise ----------

std::vector<vision::Image> makeTinyWindows(int count, std::uint64_t seed) {
  pcnn::Rng rng(seed);
  std::vector<vision::Image> windows;
  windows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    vision::Image img(32, 32, 0.2f);
    if (i % 2 == 0) {  // "positive": bright vertical bar
      for (int y = 8; y < 24; ++y) {
        for (int x = 12; x < 20; ++x) img.at(x, y) = 0.9f;
      }
    }
    for (float& v : img.data()) {
      v += 0.05f * static_cast<float>(rng.normal());
    }
    windows.push_back(std::move(img));
  }
  return windows;
}

std::vector<int> alternatingLabels(int count) {
  std::vector<int> labels(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) labels[static_cast<std::size_t>(i)] =
      i % 2 == 0 ? 1 : -1;
  return labels;
}

std::string bundlePathFor(const std::string& spec) {
  std::string name = spec;
  for (char& c : name) {
    if (c == ':') c = '_';
  }
  return "/tmp/pcnn_test_bundle_" + name + ".pcnb";
}

/// Trains a tiny pipeline on `spec`, saves it as a bundle, reloads it
/// twice in fresh objects and checks the two reloads score a fresh window
/// set bitwise-identically -- one at 1 thread, one at 4 threads, so the
/// parity also covers thread-count invariance. For extractors with
/// stateless extraction the original in-process pipeline must match too.
void expectBundleReloadParity(const std::string& spec) {
  SCOPED_TRACE(spec);
  const extract::ExtractorOptions options = tinyOptions();
  auto extractor =
      extract::ExtractorRegistry::instance().create(spec, options);
  if (extractor->hasTrainedState()) extractor->pretrain(200, 1, 0.01f);
  const bool stateless = extractor->statelessExtraction();

  eedn::EednClassifierConfig config;
  config.inputSize = extractor->featureDim();
  config.groupInputSize = extractor->featureDim() / 2;
  config.hiddenWidths = {16};
  config.outputPopulation = 2;
  config.inputScale = 1.0f / 64.0f;
  core::PartitionedPipeline pipeline(extractor, config);
  const auto trainWindows = makeTinyWindows(12, 5);
  pipeline.trainClassifier(trainWindows, alternatingLabels(12), 2, 0.05f);

  const std::string path = bundlePathFor(spec);
  ASSERT_TRUE(pipeline.trySaveBundle(path, options).ok());

  StatusOr<core::PartitionedPipeline> loadedA =
      core::PartitionedPipeline::tryLoadBundleFile(path);
  ASSERT_TRUE(loadedA.ok()) << loadedA.status().toString();
  StatusOr<core::PartitionedPipeline> loadedB =
      core::PartitionedPipeline::tryLoadBundleFile(path);
  ASSERT_TRUE(loadedB.ok()) << loadedB.status().toString();

  const auto evalWindows = makeTinyWindows(8, 99);
  setThreadCount(1);
  const std::vector<float> scoresA =
      loadedA.value().scoreAllDegraded(evalWindows);
  setThreadCount(4);
  const std::vector<float> scoresB =
      loadedB.value().scoreAllDegraded(evalWindows);
  setThreadCount(1);

  ASSERT_EQ(scoresA.size(), evalWindows.size());
  ASSERT_EQ(scoresB.size(), evalWindows.size());
  EXPECT_EQ(0, std::memcmp(scoresA.data(), scoresB.data(),
                           scoresA.size() * sizeof(float)));

  if (stateless) {
    const std::vector<float> original = pipeline.scoreAllDegraded(evalWindows);
    ASSERT_EQ(original.size(), scoresA.size());
    EXPECT_EQ(0, std::memcmp(original.data(), scoresA.data(),
                             original.size() * sizeof(float)));
  }
  std::remove(path.c_str());
}

TEST(PipelineBundle, HogReloadsBitwise) { expectBundleReloadParity("hog"); }

TEST(PipelineBundle, FixedpointReloadsBitwise) {
  expectBundleReloadParity("fixedpoint");
}

TEST(PipelineBundle, NApproxSpikeReloadsBitwise) {
  expectBundleReloadParity("napprox:4spike");
}

TEST(PipelineBundle, ParrotExactReloadsBitwise) {
  expectBundleReloadParity("parrot:exact");
}

TEST(PipelineBundle, ParrotStochasticReloadsBitwise) {
  // The 4-spike parrot codes inputs stochastically: two fresh loads of the
  // same bundle start from identical extractor state (including the coding
  // RNG), so they must agree bitwise even though the original in-process
  // pipeline -- whose RNG advanced during training -- would not.
  expectBundleReloadParity("parrot:4spike");
}

TEST(PipelineBundle, MissingSpecIsDataLoss) {
  io::Bundle empty;
  StatusOr<core::PartitionedPipeline> loaded =
      core::PartitionedPipeline::tryLoadBundle(empty);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(PipelineBundle, UnknownSpecIsInvalidArgument) {
  io::Bundle bundle;
  bundle.manifest().set(io::keys::kSpec, "warp");
  StatusOr<core::PartitionedPipeline> loaded =
      core::PartitionedPipeline::tryLoadBundle(bundle);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineBundle, ClassifierInputSizeMismatchIsFailedPrecondition) {
  const extract::ExtractorOptions options = tinyOptions();
  auto extractor = extract::ExtractorRegistry::instance().create("hog", options);
  eedn::EednClassifierConfig config;
  config.inputSize = extractor->featureDim();
  config.groupInputSize = extractor->featureDim() / 2;
  config.hiddenWidths = {16};
  config.outputPopulation = 2;
  core::PartitionedPipeline pipeline(extractor, config);
  pipeline.trainClassifier(makeTinyWindows(4, 5), alternatingLabels(4), 1,
                           0.05f);
  io::Bundle bundle;
  ASSERT_TRUE(pipeline.packBundle(bundle, options).ok());
  bundle.manifest().set("classifier_input_size", "123");
  StatusOr<core::PartitionedPipeline> loaded =
      core::PartitionedPipeline::tryLoadBundle(bundle);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace pcnn
