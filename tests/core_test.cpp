#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "extract/registry.hpp"
#include "napprox/napprox.hpp"
#include "vision/synth.hpp"

namespace pcnn::core {
namespace {

/// Toy flat-cell extractor whose single-bin "histogram" is the cell's mean
/// brightness -- small enough that detector behavior is obvious by hand.
class CellMeanExtractor : public extract::FeatureExtractor {
 public:
  CellMeanExtractor(int windowCellsX, int windowCellsY)
      : FeatureExtractor("cell-mean", extract::FeatureLayout::kFlatCell, 1,
                         windowCellsX, windowCellsY) {}

  hog::CellGrid cellGrid(const vision::Image& img) override {
    hog::CellGrid grid;
    grid.cellsX = img.width() / 8;
    grid.cellsY = img.height() / 8;
    grid.bins = 1;
    grid.data.reserve(static_cast<std::size_t>(grid.cellsX) * grid.cellsY);
    for (int cy = 0; cy < grid.cellsY; ++cy) {
      for (int cx = 0; cx < grid.cellsX; ++cx) {
        float sum = 0.0f;
        for (int y = 0; y < 8; ++y) {
          for (int x = 0; x < 8; ++x) {
            sum += img.at(cx * 8 + x, cy * 8 + y);
          }
        }
        grid.data.push_back(sum / 64.0f);
      }
    }
    return grid;
  }

  extract::ExtractorInfo info() const override { return {}; }
};

/// Toy flat-cell extractor emitting a constant grid of ones.
class ConstantExtractor : public extract::FeatureExtractor {
 public:
  ConstantExtractor(int windowCellsX, int windowCellsY)
      : FeatureExtractor("constant", extract::FeatureLayout::kFlatCell, 1,
                         windowCellsX, windowCellsY) {}

  hog::CellGrid cellGrid(const vision::Image& img) override {
    hog::CellGrid grid;
    grid.cellsX = img.width() / 8;
    grid.cellsY = img.height() / 8;
    grid.bins = 1;
    grid.data.assign(static_cast<std::size_t>(grid.cellsX) * grid.cellsY,
                     1.0f);
    return grid;
  }

  extract::ExtractorInfo info() const override { return {}; }
};

TEST(ResourceBudget, PaperNumbers) {
  const ResourceBudget budget;
  EXPECT_EQ(budget.cellsPerWindow(), 128);
  EXPECT_EQ(budget.parrotExtractorCores(), 1024);  // 8 cores x 128 cells
  EXPECT_EQ(budget.combinedCores(), 3888);         // 1024 + 2864
}

TEST(Assemblers, FlatCellWindowFromGridFlattens) {
  hog::CellGrid grid;
  grid.cellsX = 4;
  grid.cellsY = 4;
  grid.bins = 2;
  grid.data.resize(32);
  for (std::size_t i = 0; i < grid.data.size(); ++i) {
    grid.data[i] = static_cast<float>(i);
  }
  extract::ExtractorOptions options;
  options.layout = extract::FeatureLayout::kFlatCell;
  options.windowCellsX = 2;
  options.windowCellsY = 2;
  const auto extractor = extract::makeExtractor("napprox", options);
  const auto f = extractor->windowFromGrid(grid, 1, 1);
  ASSERT_EQ(f.size(), 8u);
  // First cell of the window is grid cell (1,1) = index (1*4+1)*2 = 10.
  EXPECT_FLOAT_EQ(f[0], 10.0f);
  EXPECT_FLOAT_EQ(f[1], 11.0f);
}

TEST(Assemblers, BlockNormWindowFromGridShape) {
  hog::CellGrid grid;
  grid.cellsX = 8;
  grid.cellsY = 16;
  grid.bins = 18;
  grid.data.assign(8 * 16 * 18, 1.0f);
  const auto extractor =
      extract::makeExtractor("napprox", extract::FeatureLayout::kBlockNorm);
  EXPECT_EQ(extractor->windowFromGrid(grid, 0, 0).size(),
            static_cast<std::size_t>(7560));
}

TEST(Assemblers, WindowFromBlocksMatchesWindowFromGrid) {
  // The precomputed-block path must be bitwise-identical to the per-window
  // path for every window position over the level grid.
  hog::CellGrid grid;
  grid.cellsX = 6;
  grid.cellsY = 9;
  grid.bins = 4;
  grid.data.resize(static_cast<std::size_t>(6) * 9 * 4);
  for (std::size_t i = 0; i < grid.data.size(); ++i) {
    grid.data[i] = static_cast<float>((i * 7) % 23) * 0.25f;
  }
  extract::ExtractorOptions options;
  options.layout = extract::FeatureLayout::kBlockNorm;
  options.windowCellsX = 3;
  options.windowCellsY = 4;
  const auto extractor = extract::makeExtractor("hog", options);
  const hog::BlockGrid blocks = extractor->prepareBlocks(grid);
  EXPECT_EQ(blocks.blocksX, 5);
  EXPECT_EQ(blocks.blocksY, 8);
  for (int cy = 0; cy + 4 <= grid.cellsY; ++cy) {
    for (int cx = 0; cx + 3 <= grid.cellsX; ++cx) {
      const auto fromGrid = extractor->windowFromGrid(grid, cx, cy);
      const auto fromBlocks = extractor->windowFromBlocks(blocks, cx, cy);
      ASSERT_EQ(fromGrid.size(), fromBlocks.size());
      for (std::size_t i = 0; i < fromGrid.size(); ++i) {
        ASSERT_EQ(fromGrid[i], fromBlocks[i]) << "cx=" << cx << " cy=" << cy
                                              << " i=" << i;
      }
    }
  }
}

TEST(GridDetector, NullCallablesRejected) {
  GridDetectorParams params;
  EXPECT_THROW(GridDetector(params, nullptr,
                            [](const std::vector<float>&) { return 0.0f; }),
               std::invalid_argument);
  EXPECT_THROW(GridDetector(params, std::make_shared<ConstantExtractor>(2, 2),
                            WindowScorer{}),
               std::invalid_argument);
}

TEST(GridDetector, FindsBrightWindowWithToyScorer) {
  // Toy setting: features are cell means; the scorer fires on bright cells.
  GridDetectorParams params;
  params.windowCellsX = 2;
  params.windowCellsY = 4;
  params.scoreThreshold = 0.5f;
  params.pyramid.maxLevels = 1;

  auto scorer = [](const std::vector<float>& f) {
    float sum = 0.0f;
    for (float v : f) sum += v;
    return sum / static_cast<float>(f.size());
  };

  vision::Image scene(64, 64, 0.1f);
  for (int y = 16; y < 48; ++y) {
    for (int x = 24; x < 40; ++x) scene.at(x, y) = 0.95f;
  }
  GridDetector detector(params, std::make_shared<CellMeanExtractor>(2, 4),
                        scorer);
  const auto detections = detector.detect(scene);
  ASSERT_FALSE(detections.empty());
  // The best detection must sit over the bright rectangle.
  const auto& best = detections.front();
  EXPECT_GE(best.box.x + best.box.w / 2, 24.0f);
  EXPECT_LE(best.box.x + best.box.w / 2, 40.0f);
}

TEST(GridDetector, RawDetectionsExceedNmsDetections) {
  GridDetectorParams params;
  params.windowCellsX = 2;
  params.windowCellsY = 2;
  params.scoreThreshold = -1e9f;
  params.nmsEpsilon = 0.6f;  // adjacent windows overlap by exactly 50%
  params.pyramid.maxLevels = 1;
  auto scorer = [](const std::vector<float>&) { return 1.0f; };
  GridDetector detector(params, std::make_shared<ConstantExtractor>(2, 2),
                        scorer);
  vision::Image scene(48, 48, 0.5f);
  EXPECT_GT(detector.detectRaw(scene).size(), detector.detect(scene).size());
}

TEST(GridDetector, ThresholdOverrideAtDetectTime) {
  // Every window scores 1.0; the construction-time threshold keeps them
  // all, and a call-time override above the score drops them all without
  // rebuilding the detector.
  GridDetectorParams params;
  params.windowCellsX = 2;
  params.windowCellsY = 2;
  params.scoreThreshold = 0.5f;
  params.pyramid.maxLevels = 1;
  auto scorer = [](const std::vector<float>&) { return 1.0f; };
  GridDetector detector(params, std::make_shared<ConstantExtractor>(2, 2),
                        scorer);
  vision::Image scene(48, 48, 0.5f);
  const auto atDefault = detector.detectRaw(scene);
  EXPECT_FALSE(atDefault.empty());
  EXPECT_EQ(detector.detectRaw(scene, 0.5f).size(), atDefault.size());
  EXPECT_TRUE(detector.detectRaw(scene, 2.0f).empty());
  EXPECT_TRUE(detector.detect(scene, 2.0f).empty());
  // The override is per call: the construction-time threshold still holds.
  EXPECT_EQ(detector.detectRaw(scene).size(), atDefault.size());
}

TEST(PartitionedPipeline, TrainsOnExtractedFeatures) {
  // NApprox features + small Eedn head learn to separate synthetic person
  // windows from negatives (a miniature of the Fig. 5 pipeline).
  eedn::EednClassifierConfig config;
  config.inputSize = 8 * 16 * 18;
  config.groupInputSize = 126;
  config.outputsPerGroup = 8;
  config.hiddenWidths = {};
  config.outputPopulation = 4;
  config.seed = 5;
  PartitionedPipeline pipeline(
      extract::makeExtractor("napprox", extract::FeatureLayout::kFlatCell),
      config);

  vision::SyntheticPersonDataset dataset;
  pcnn::Rng rng(7);
  std::vector<vision::Image> windows;
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) {
    windows.push_back(dataset.positiveWindow(rng));
    labels.push_back(1);
    windows.push_back(dataset.negativeWindow(rng));
    labels.push_back(-1);
  }
  pipeline.trainClassifier(windows, labels, 25, 0.05f);
  EXPECT_GT(pipeline.evalAccuracy(windows, labels), 0.8);
}

TEST(PartitionedPipeline, RejectsNulls) {
  eedn::EednClassifierConfig config;
  config.inputSize = 8;
  EXPECT_THROW(PartitionedPipeline(
                   std::shared_ptr<extract::FeatureExtractor>{}, config),
               std::invalid_argument);
}

TEST(Absorbed, ClassifierMeetsResourceBudget) {
  const ResourceBudget budget;
  auto absorbed = makeAbsorbedClassifier(budget);
  EXPECT_EQ(absorbed->config().inputSize, 64 * 128);
  // Iso-resource in our accounting: the absorbed network must be at least
  // as large as the partitioned pipeline's feature-stage estimate.
  EXPECT_GT(absorbed->coreCountEstimate(), 60);
}

TEST(Absorbed, RawPixelFeatures) {
  vision::Image window(64, 128, 0.25f);
  const auto f = rawPixelFeatures(window);
  EXPECT_EQ(f.size(), static_cast<std::size_t>(64 * 128));
  EXPECT_FLOAT_EQ(f[0], 0.25f);
}

// ------------------------------------------- DegradationReport merging

TEST(DegradationReport, MergeEmptyIntoEmptyStaysHealthy) {
  DegradationReport a;
  DegradationReport b;
  a.merge(b);
  EXPECT_FALSE(a.degraded());
  EXPECT_EQ(a.levelsSkipped, 0);
  EXPECT_EQ(a.windowsLost, 0);
  EXPECT_TRUE(a.skips.empty());
  EXPECT_EQ(a.summary(), "healthy");
}

TEST(DegradationReport, MergeConcatenatesSkipAndFaultAttribution) {
  DegradationReport a;
  a.addSkip(0, 100, Status::Unavailable("shed"));
  a.faults.droppedSpikes = 3;
  DegradationReport b;
  b.addSkip(2, 50, Status::DeadlineExceeded("late"));
  b.faults.droppedSpikes = 4;
  b.faults.weightFlips = 1;
  a.merge(b);
  EXPECT_EQ(a.levelsSkipped, 2);
  EXPECT_EQ(a.windowsLost, 150);
  ASSERT_EQ(a.skips.size(), 2u);
  EXPECT_EQ(a.skips[0].level, 0);
  EXPECT_EQ(a.skips[0].status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(a.skips[1].level, 2);
  EXPECT_EQ(a.skips[1].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(a.faults.droppedSpikes, 7);
  EXPECT_EQ(a.faults.weightFlips, 1);
  EXPECT_EQ(a.faults.total(), 8);
  EXPECT_NE(a.summary().find("2 levels skipped"), std::string::npos);
}

TEST(DegradationReport, MergeCapsStoredSkipsButKeepsTrueCounts) {
  DegradationReport a;
  DegradationReport b;
  for (int i = 0; i < 20; ++i) a.addSkip(i, 1, Status::Unavailable("a"));
  for (int i = 0; i < 20; ++i) b.addSkip(i, 1, Status::Unavailable("b"));
  a.merge(b);
  EXPECT_EQ(a.skips.size(), DegradationReport::kMaxSkips);
  EXPECT_EQ(a.levelsSkipped, 40);  // true count survives the cap
  EXPECT_EQ(a.windowsLost, 40);
}

TEST(DegradationReport, WindowsLostAccumulatesWithoutOverflow) {
  constexpr long kMax = std::numeric_limits<long>::max();
  DegradationReport a;
  a.windowsLost = kMax - 5;
  DegradationReport b;
  b.windowsLost = 10;
  a.merge(b);
  EXPECT_EQ(a.windowsLost, kMax);  // saturates, never wraps negative
  // addSkip saturates the running total the same way.
  DegradationReport c;
  c.addSkip(0, kMax - 1, Status::Unavailable("x"));
  c.addSkip(1, kMax - 1, Status::Unavailable("y"));
  EXPECT_EQ(c.windowsLost, kMax);
  EXPECT_EQ(c.levelsSkipped, 2);
}

TEST(DegradationReport, FaultTalliesSaturateIncludingTotal) {
  constexpr long kMax = std::numeric_limits<long>::max();
  DegradationReport a;
  a.faults.droppedSpikes = kMax - 2;
  DegradationReport b;
  b.faults.droppedSpikes = 100;
  b.faults.deadCoreDrops = 7;
  a.merge(b);
  EXPECT_EQ(a.faults.droppedSpikes, kMax);
  EXPECT_EQ(a.faults.deadCoreDrops, 7);
  // total() must not wrap either once the fields sit near the ceiling.
  EXPECT_EQ(a.faults.total(), kMax);
  EXPECT_TRUE(a.degraded());
  // summary() on a saturated report stays well-formed.
  EXPECT_NE(a.summary().find("fault events"), std::string::npos);
}

}  // namespace
}  // namespace pcnn::core
