#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "napprox/napprox.hpp"
#include "vision/synth.hpp"

namespace pcnn::core {
namespace {

TEST(ResourceBudget, PaperNumbers) {
  const ResourceBudget budget;
  EXPECT_EQ(budget.cellsPerWindow(), 128);
  EXPECT_EQ(budget.parrotExtractorCores(), 1024);  // 8 cores x 128 cells
  EXPECT_EQ(budget.combinedCores(), 3888);         // 1024 + 2864
}

TEST(Assemblers, CellFeatureAssemblerFlattens) {
  hog::CellGrid grid;
  grid.cellsX = 4;
  grid.cellsY = 4;
  grid.bins = 2;
  grid.data.resize(32);
  for (std::size_t i = 0; i < grid.data.size(); ++i) {
    grid.data[i] = static_cast<float>(i);
  }
  const auto assemble = cellFeatureAssembler(2, 2);
  const auto f = assemble(grid, 1, 1);
  ASSERT_EQ(f.size(), 8u);
  // First cell of the window is grid cell (1,1) = index (1*4+1)*2 = 10.
  EXPECT_FLOAT_EQ(f[0], 10.0f);
  EXPECT_FLOAT_EQ(f[1], 11.0f);
}

TEST(Assemblers, BlockFeatureAssemblerShape) {
  hog::CellGrid grid;
  grid.cellsX = 8;
  grid.cellsY = 16;
  grid.bins = 18;
  grid.data.assign(8 * 16 * 18, 1.0f);
  hog::HogParams params;
  params.numBins = 18;
  const auto assemble = blockFeatureAssembler(params, 8, 16);
  EXPECT_EQ(assemble(grid, 0, 0).size(), static_cast<std::size_t>(7560));
}

TEST(GridDetector, NullCallablesRejected) {
  GridDetectorParams params;
  EXPECT_THROW(GridDetector(params, nullptr, cellFeatureAssembler(8, 16),
                            [](const std::vector<float>&) { return 0.0f; }),
               std::invalid_argument);
}

TEST(GridDetector, FindsBrightWindowWithToyScorer) {
  // Toy setting: features are cell means; the scorer fires on bright cells.
  GridDetectorParams params;
  params.windowCellsX = 2;
  params.windowCellsY = 4;
  params.scoreThreshold = 0.5f;
  params.pyramid.maxLevels = 1;

  auto extractor = [](const vision::Image& img) {
    hog::CellGrid grid;
    grid.cellsX = img.width() / 8;
    grid.cellsY = img.height() / 8;
    grid.bins = 1;
    grid.data.reserve(static_cast<std::size_t>(grid.cellsX) * grid.cellsY);
    for (int cy = 0; cy < grid.cellsY; ++cy) {
      for (int cx = 0; cx < grid.cellsX; ++cx) {
        float sum = 0.0f;
        for (int y = 0; y < 8; ++y) {
          for (int x = 0; x < 8; ++x) {
            sum += img.at(cx * 8 + x, cy * 8 + y);
          }
        }
        grid.data.push_back(sum / 64.0f);
      }
    }
    return grid;
  };
  auto scorer = [](const std::vector<float>& f) {
    float sum = 0.0f;
    for (float v : f) sum += v;
    return sum / static_cast<float>(f.size());
  };

  vision::Image scene(64, 64, 0.1f);
  for (int y = 16; y < 48; ++y) {
    for (int x = 24; x < 40; ++x) scene.at(x, y) = 0.95f;
  }
  GridDetector detector(params, extractor, cellFeatureAssembler(2, 4),
                        scorer);
  const auto detections = detector.detect(scene);
  ASSERT_FALSE(detections.empty());
  // The best detection must sit over the bright rectangle.
  const auto& best = detections.front();
  EXPECT_GE(best.box.x + best.box.w / 2, 24.0f);
  EXPECT_LE(best.box.x + best.box.w / 2, 40.0f);
}

TEST(GridDetector, RawDetectionsExceedNmsDetections) {
  GridDetectorParams params;
  params.windowCellsX = 2;
  params.windowCellsY = 2;
  params.scoreThreshold = -1e9f;
  params.nmsEpsilon = 0.6f;  // adjacent windows overlap by exactly 50%
  params.pyramid.maxLevels = 1;
  auto extractor = [](const vision::Image& img) {
    hog::CellGrid grid;
    grid.cellsX = img.width() / 8;
    grid.cellsY = img.height() / 8;
    grid.bins = 1;
    grid.data.assign(static_cast<std::size_t>(grid.cellsX) * grid.cellsY,
                     1.0f);
    return grid;
  };
  auto scorer = [](const std::vector<float>&) { return 1.0f; };
  GridDetector detector(params, extractor, cellFeatureAssembler(2, 2),
                        scorer);
  vision::Image scene(48, 48, 0.5f);
  EXPECT_GT(detector.detectRaw(scene).size(), detector.detect(scene).size());
}

TEST(GridDetector, ThresholdOverrideAtDetectTime) {
  // Every window scores 1.0; the construction-time threshold keeps them
  // all, and a call-time override above the score drops them all without
  // rebuilding the detector.
  GridDetectorParams params;
  params.windowCellsX = 2;
  params.windowCellsY = 2;
  params.scoreThreshold = 0.5f;
  params.pyramid.maxLevels = 1;
  auto extractor = [](const vision::Image& img) {
    hog::CellGrid grid;
    grid.cellsX = img.width() / 8;
    grid.cellsY = img.height() / 8;
    grid.bins = 1;
    grid.data.assign(static_cast<std::size_t>(grid.cellsX) * grid.cellsY,
                     1.0f);
    return grid;
  };
  auto scorer = [](const std::vector<float>&) { return 1.0f; };
  GridDetector detector(params, extractor, cellFeatureAssembler(2, 2),
                        scorer);
  vision::Image scene(48, 48, 0.5f);
  const auto atDefault = detector.detectRaw(scene);
  EXPECT_FALSE(atDefault.empty());
  EXPECT_EQ(detector.detectRaw(scene, 0.5f).size(), atDefault.size());
  EXPECT_TRUE(detector.detectRaw(scene, 2.0f).empty());
  EXPECT_TRUE(detector.detect(scene, 2.0f).empty());
  // The override is per call: the construction-time threshold still holds.
  EXPECT_EQ(detector.detectRaw(scene).size(), atDefault.size());
}

TEST(PartitionedPipeline, TrainsOnExtractedFeatures) {
  // NApprox features + small Eedn head learn to separate synthetic person
  // windows from negatives (a miniature of the Fig. 5 pipeline).
  napprox::NApproxHog extractor;
  eedn::EednClassifierConfig config;
  config.inputSize = 8 * 16 * 18;
  config.groupInputSize = 126;
  config.outputsPerGroup = 8;
  config.hiddenWidths = {};
  config.outputPopulation = 4;
  config.seed = 5;
  PartitionedPipeline pipeline(
      [&extractor](const vision::Image& w) {
        return extractor.cellDescriptor(w);
      },
      config);

  vision::SyntheticPersonDataset dataset;
  pcnn::Rng rng(7);
  std::vector<vision::Image> windows;
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) {
    windows.push_back(dataset.positiveWindow(rng));
    labels.push_back(1);
    windows.push_back(dataset.negativeWindow(rng));
    labels.push_back(-1);
  }
  pipeline.trainClassifier(windows, labels, 25, 0.05f);
  EXPECT_GT(pipeline.evalAccuracy(windows, labels), 0.8);
}

TEST(PartitionedPipeline, RejectsNulls) {
  eedn::EednClassifierConfig config;
  config.inputSize = 8;
  EXPECT_THROW(PartitionedPipeline(WindowExtractorFn{}, config),
               std::invalid_argument);
  EXPECT_THROW(PartitionedPipeline(
                   std::shared_ptr<extract::FeatureExtractor>{}, config),
               std::invalid_argument);
}

TEST(Absorbed, ClassifierMeetsResourceBudget) {
  const ResourceBudget budget;
  auto absorbed = makeAbsorbedClassifier(budget);
  EXPECT_EQ(absorbed->config().inputSize, 64 * 128);
  // Iso-resource in our accounting: the absorbed network must be at least
  // as large as the partitioned pipeline's feature-stage estimate.
  EXPECT_GT(absorbed->coreCountEstimate(), 60);
}

TEST(Absorbed, RawPixelFeatures) {
  vision::Image window(64, 128, 0.25f);
  const auto f = rawPixelFeatures(window);
  EXPECT_EQ(f.size(), static_cast<std::size_t>(64 * 128));
  EXPECT_FLOAT_EQ(f[0], 0.25f);
}

}  // namespace
}  // namespace pcnn::core
