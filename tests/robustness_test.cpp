// Fault injection and graceful degradation across the pipeline: the
// deterministic tn::FaultModel (dead cores, spike drops, stuck neurons,
// weight bit-flips), the pcnn::Status typed-error layer, hardened
// deserialization, registry spec validation, and the detector/pipeline
// degradation paths.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/status.hpp"
#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "eedn/mapper.hpp"
#include "eedn/serialize.hpp"
#include "extract/registry.hpp"
#include "hog/hog.hpp"
#include "parrot/parrot.hpp"
#include "svm/serialize.hpp"
#include "tn/faults.hpp"
#include "tn/model_io.hpp"
#include "tn/network.hpp"
#include "vision/image.hpp"

namespace pcnn {
namespace {

using tn::Destination;
using tn::FaultCounts;
using tn::FaultPlan;
using tn::Network;
using tn::RunResult;

// --- FaultPlan parsing ----------------------------------------------------

TEST(FaultPlan, ParsesAndRoundTrips) {
  const StatusOr<FaultPlan> parsed =
      tn::parseFaultPlan("drop=0.01,dead_cores=3,seed=7");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->spikeDropProb, 0.01);
  EXPECT_EQ(parsed->deadCores, 3);
  EXPECT_EQ(parsed->seed, 7u);
  EXPECT_TRUE(parsed->any());

  const StatusOr<FaultPlan> reparsed = tn::parseFaultPlan(parsed->toString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_DOUBLE_EQ(reparsed->spikeDropProb, parsed->spikeDropProb);
  EXPECT_EQ(reparsed->deadCores, parsed->deadCores);
  EXPECT_EQ(reparsed->seed, parsed->seed);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const StatusOr<FaultPlan> unknown = tn::parseFaultPlan("wibble=1");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.status().message().find("wibble"), std::string::npos);
  EXPECT_NE(unknown.status().message().find("dead_cores"),
            std::string::npos);  // actionable: lists the valid keys

  EXPECT_FALSE(tn::parseFaultPlan("drop=2.0").ok());     // prob > 1
  EXPECT_FALSE(tn::parseFaultPlan("drop=abc").ok());     // not a number
  EXPECT_FALSE(tn::parseFaultPlan("dead_cores=-1").ok());
  EXPECT_FALSE(tn::parseFaultPlan("drop").ok());         // no '='
  EXPECT_FALSE(tn::parseFaultPlan("").ok());
}

TEST(FaultPlan, ZeroPlanInjectsNothing) {
  EXPECT_FALSE(FaultPlan{}.any());
}

// --- Status / StatusOr ----------------------------------------------------

TEST(Status, CodesAndToString) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().toString(), "OK");
  const Status bad = Status::DataLoss("truncated");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kDataLoss);
  EXPECT_EQ(bad.toString(), "DATA_LOSS: truncated");
}

TEST(Status, StatusOrHoldsValueOrError) {
  StatusOr<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  StatusOr<int> bad = Status::OutOfRange("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_THROW(bad.value(), std::runtime_error);
}

TEST(Status, StatusOrSupportsMoveOnlyPayloads) {
  StatusOr<std::unique_ptr<int>> holder = std::make_unique<int>(9);
  ASSERT_TRUE(holder.ok());
  std::unique_ptr<int> moved = std::move(holder).value();
  EXPECT_EQ(*moved, 9);
}

// --- RunResult ------------------------------------------------------------

TEST(RunResult, AccumulateMergesOutputSpikesOnRequest) {
  RunResult total;
  RunResult part;
  part.totalSpikes = 3;
  part.ticksRun = 2;
  part.outputSpikes.push_back({1, 0, 5});
  total.accumulate(part);  // default: stats only
  EXPECT_EQ(total.totalSpikes, 3);
  EXPECT_TRUE(total.outputSpikes.empty());
  total.accumulate(part, /*mergeOutputSpikes=*/true);
  ASSERT_EQ(total.outputSpikes.size(), 1u);
  EXPECT_EQ(total.outputSpikes[0].neuron, 5);
  EXPECT_EQ(total.totalSpikes, 6);
}

// --- Fault injection in the simulator -------------------------------------

/// Ring of cores with self-sustaining traffic: axon 0 fires neurons 0..7,
/// neuron 0 routes to the next core, every neuron is recorded.
std::unique_ptr<Network> makeRingNetwork(int cores) {
  auto net = std::make_unique<Network>(7);
  for (int c = 0; c < cores; ++c) net->addCore();
  for (int c = 0; c < cores; ++c) {
    tn::Core& core = net->core(c);
    for (int n = 0; n < 8; ++n) {
      core.setConnection(0, n, true);
      core.neuron(n).synapticWeights = {1, 0, 0, 0};
      core.neuron(n).threshold = 1;
      core.neuron(n).recordOutput = true;
    }
    core.neuron(0).dest = Destination{(c + 1) % cores, 0, 1};
  }
  return net;
}

void scheduleRingInputs(Network& net, int cores) {
  for (int t = 0; t < 6; ++t) {
    for (int c = 0; c < cores; ++c) net.scheduleInput(t, c, 0);
  }
}

void expectSameRun(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.totalSpikes, b.totalSpikes);
  EXPECT_EQ(a.ticksRun, b.ticksRun);
  ASSERT_EQ(a.coreSpikes.size(), b.coreSpikes.size());
  for (std::size_t c = 0; c < a.coreSpikes.size(); ++c) {
    EXPECT_EQ(a.coreSpikes[c], b.coreSpikes[c]) << "core " << c;
  }
  ASSERT_EQ(a.outputSpikes.size(), b.outputSpikes.size());
  for (std::size_t i = 0; i < a.outputSpikes.size(); ++i) {
    EXPECT_EQ(a.outputSpikes[i].tick, b.outputSpikes[i].tick) << i;
    EXPECT_EQ(a.outputSpikes[i].core, b.outputSpikes[i].core) << i;
    EXPECT_EQ(a.outputSpikes[i].neuron, b.outputSpikes[i].neuron) << i;
  }
}

TEST(FaultInjection, DegradedRunIsThreadCountInvariant) {
  FaultPlan plan;
  plan.spikeDropProb = 0.2;
  plan.deadCores = 1;
  plan.stuckOnNeurons = 2;
  plan.stuckOffNeurons = 2;
  plan.weightFlipProb = 0.05;
  plan.seed = 11;

  const int oldThreads = threadCount();
  auto runWith = [&](int threads) {
    setThreadCount(threads);
    auto net = makeRingNetwork(6);
    net->setFaultPlan(plan);
    scheduleRingInputs(*net, 6);
    return net->run(30);
  };
  const RunResult single = runWith(1);
  const RunResult pooled = runWith(4);
  setThreadCount(oldThreads);

  EXPECT_GT(single.totalSpikes, 0);  // degraded, not dead
  expectSameRun(single, pooled);
}

TEST(FaultInjection, SameSeedSamePlanIsBitwiseReproducible) {
  FaultPlan plan;
  plan.spikeDropProb = 0.3;
  plan.deadCores = 2;
  plan.seed = 23;
  auto runOnce = [&] {
    auto net = makeRingNetwork(5);
    net->setFaultPlan(plan);
    scheduleRingInputs(*net, 5);
    return net->run(25);
  };
  expectSameRun(runOnce(), runOnce());
}

TEST(FaultInjection, ZeroFaultPlanIsBitwiseIdenticalToFaultFree) {
  auto clean = makeRingNetwork(4);
  auto planned = makeRingNetwork(4);
  planned->setFaultPlan(FaultPlan{});  // any() == false: never attached
  EXPECT_FALSE(planned->faultsActive());

  const FaultCounts before = tn::globalFaultCounts();
  scheduleRingInputs(*clean, 4);
  scheduleRingInputs(*planned, 4);
  const RunResult a = clean->run(20);
  const RunResult b = planned->run(20);
  const FaultCounts delta = tn::globalFaultCounts() - before;

  expectSameRun(a, b);
  EXPECT_EQ(delta.total(), 0);
}

TEST(FaultInjection, DeadCoreNeverFiresAndDropsDeliveries) {
  FaultPlan plan;
  plan.deadCores = 1;
  plan.seed = 3;
  auto net = makeRingNetwork(4);
  net->setFaultPlan(plan);
  scheduleRingInputs(*net, 4);
  const FaultCounts before = tn::globalFaultCounts();
  const RunResult result = net->run(20);
  const FaultCounts delta = tn::globalFaultCounts() - before;

  ASSERT_NE(net->faultModel(), nullptr);
  const std::vector<int> dead = net->faultModel()->deadCoreIndices();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(result.coreSpikes[static_cast<std::size_t>(dead[0])], 0);
  EXPECT_GT(delta.deadCoreDrops, 0);
  for (const auto& spike : result.outputSpikes) {
    EXPECT_NE(spike.core, dead[0]);
  }
}

TEST(FaultInjection, StuckOnNeuronsFireEveryTick) {
  // A silent core (no inputs, no connections): every spike comes from the
  // three stuck-at-on neurons, one each per tick.
  Network net(1);
  net.addCore();
  FaultPlan plan;
  plan.stuckOnNeurons = 3;
  plan.seed = 5;
  net.setFaultPlan(plan);
  const FaultCounts before = tn::globalFaultCounts();
  const RunResult result = net.run(10);
  const FaultCounts delta = tn::globalFaultCounts() - before;
  EXPECT_EQ(result.totalSpikes, 30);
  EXPECT_EQ(delta.stuckOnSpikes, 30);
}

TEST(FaultInjection, StuckOffNeuronsAreSuppressed) {
  // All 256 neurons fire on every input tick; five of them are stuck off.
  Network net(1);
  const int c0 = net.addCore();
  for (int n = 0; n < tn::kNeuronsPerCore; ++n) {
    net.core(c0).setConnection(0, n, true);
    net.core(c0).neuron(n).synapticWeights = {1, 0, 0, 0};
    net.core(c0).neuron(n).threshold = 1;
  }
  FaultPlan plan;
  plan.stuckOffNeurons = 5;
  plan.seed = 9;
  net.setFaultPlan(plan);
  for (int t = 0; t < 10; ++t) net.scheduleInput(t, c0, 0);
  const FaultCounts before = tn::globalFaultCounts();
  const RunResult result = net.run(10);
  const FaultCounts delta = tn::globalFaultCounts() - before;
  EXPECT_EQ(result.totalSpikes, (tn::kNeuronsPerCore - 5) * 10);
  EXPECT_EQ(delta.stuckOffSuppressed, 50);
}

TEST(FaultInjection, WeightFlipsAppliedOncePerCore) {
  Network net(1);
  net.addCore();
  FaultPlan plan;
  plan.weightFlipProb = 1.0;
  plan.seed = 17;
  net.setFaultPlan(plan);
  const FaultCounts before = tn::globalFaultCounts();
  net.run(1);  // materializes the plan
  const FaultCounts afterFirst = tn::globalFaultCounts() - before;
  EXPECT_EQ(afterFirst.weightFlips,
            static_cast<long>(tn::kNeuronsPerCore) * tn::kAxonTypes);
  net.run(1);  // same core population: no re-flip
  const FaultCounts afterSecond = tn::globalFaultCounts() - before;
  EXPECT_EQ(afterSecond.weightFlips, afterFirst.weightFlips);
}

TEST(FaultInjection, SpikeDropDegradesParrotCoreletMonotonically) {
  // The parrot's Eedn network mapped onto the simulator, fed the same
  // binarized patches under increasing spike-drop rates. The fault-free
  // run must agree exactly with the plain-C++ reference; activity must
  // fall monotonically as the links get lossier.
  parrot::ParrotHog model;
  std::vector<std::vector<int>> inputs;
  for (int p = 0; p < 3; ++p) {
    std::vector<int> input;
    for (int i = 0; i < 100; ++i) input.push_back((i + p) % 3 == 0 ? 1 : 0);
    inputs.push_back(std::move(input));
  }

  const double rates[] = {0.0, 0.25, 0.9};
  long spikes[3] = {0, 0, 0};
  int misses[3] = {0, 0, 0};
  for (int r = 0; r < 3; ++r) {
    const auto mapped = eedn::TnMapper::map(model.net());
    if (rates[r] > 0.0) {
      FaultPlan plan;
      plan.spikeDropProb = rates[r];
      plan.seed = 5;
      mapped->network().setFaultPlan(plan);
    }
    for (const std::vector<int>& input : inputs) {
      ASSERT_EQ(static_cast<int>(input.size()), mapped->inputSize());
      const std::vector<int> got = mapped->forwardSpikes(input);
      const std::vector<int> want = mapped->referenceForward(input);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (got[i] != want[i]) ++misses[r];
      }
      spikes[r] += mapped->lastRun().totalSpikes;
    }
  }
  EXPECT_EQ(misses[0], 0);  // fault-free: exact simulator/reference parity
  EXPECT_GT(misses[2], 0);  // 90% drop visibly corrupts the outputs
  EXPECT_GE(spikes[0], spikes[1]);
  EXPECT_GE(spikes[1], spikes[2]);
  EXPECT_GT(spikes[0], spikes[2]);  // strictly fewer spikes end to end
}

// --- Hardened deserialization ----------------------------------------------

TEST(ModelIo, RejectsCorruptStreamsWithTypedErrors) {
  {
    std::stringstream bad("not-a-model 1");
    const auto loaded = tn::tryLoadModel(bad);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  }
  {
    std::stringstream huge("pcnn-tn-v1 99999999");
    const auto loaded = tn::tryLoadModel(huge);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
  }
  {
    // conn row announces 5 entries but the stream ends after 2.
    std::stringstream truncated("pcnn-tn-v1 1\ncore 0\nconn 0 5 1 2");
    const auto loaded = tn::tryLoadModel(truncated);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  }
  {
    // neuron index 900 cannot exist on a 256-neuron core.
    std::stringstream outOfRange("pcnn-tn-v1 1\ncore 0\nconn 0 1 900");
    const auto loaded = tn::tryLoadModel(outOfRange);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
    EXPECT_NE(loaded.status().message().find("900"), std::string::npos);
  }
  {
    // destination routes to core 5 of a 1-core model.
    std::stringstream badDest(
        "pcnn-tn-v1 1\ncore 0\n"
        "neuron 0 1 0 0 0 0 1 0 0 0 0 0 5 0 1 0");
    const auto loaded = tn::tryLoadModel(badDest);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
  }
  // The legacy entry point still throws for existing callers.
  std::stringstream bad("garbage");
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_THROW(tn::loadModel(bad), std::runtime_error);
#pragma GCC diagnostic pop
}

TEST(ModelIo, RoundTripSurvivesHardenedLoader) {
  auto net = makeRingNetwork(2);
  std::stringstream buffer;
  tn::saveModel(*net, buffer);
  const auto loaded = tn::tryLoadModel(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
  EXPECT_EQ((*loaded)->coreCount(), 2);
}

TEST(SvmSerialize, RejectsHostileHeaders) {
  {
    // A corrupt dimension must be rejected before it drives an allocation.
    std::stringstream huge("pcnn-svm-v1 134217729\n1.0 1.0\n0.5\n");
    const auto loaded = svm::tryLoadModel(huge);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
  }
  {
    std::stringstream truncated("pcnn-svm-v1 4\n1.0 1.0\n0.5\n0.1 0.2");
    const auto loaded = svm::tryLoadModel(truncated);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  }
  std::stringstream bad("pcnn-svm-v1 134217729\n1.0 1.0\n0.5\n");
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_THROW(svm::loadModel(bad), std::runtime_error);
#pragma GCC diagnostic pop
}

TEST(EednSerialize, TruncatedStreamIsTypedDataLoss) {
  pcnn::Rng rng(31);
  nn::Sequential net;
  net.add(std::make_unique<eedn::TrinaryDense>(12, 5, rng));
  std::stringstream buffer;
  eedn::saveNetwork(net, buffer);
  const std::string text = buffer.str();

  pcnn::Rng rng2(32);
  nn::Sequential target;
  target.add(std::make_unique<eedn::TrinaryDense>(12, 5, rng2));
  std::stringstream truncated(text.substr(0, text.size() / 2));
  const Status status = eedn::tryLoadNetwork(target, truncated);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);

  std::stringstream truncated2(text.substr(0, text.size() / 2));
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_THROW(eedn::loadNetwork(target, truncated2), std::runtime_error);
#pragma GCC diagnostic pop

  // And the intact stream loads cleanly through the typed path.
  std::stringstream whole(text);
  EXPECT_TRUE(eedn::tryLoadNetwork(target, whole).ok());
}

// --- Registry spec validation ----------------------------------------------

TEST(Registry, TryCreateRejectsMalformedSpecsActionably) {
  auto& registry = extract::ExtractorRegistry::instance();
  {
    // 9 is not a power of two: a typo, not a new operating point.
    const auto made = registry.tryCreate("parrot:9spike");
    ASSERT_FALSE(made.ok());
    EXPECT_EQ(made.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(made.status().message().find("power of two"),
              std::string::npos);
    EXPECT_NE(made.status().message().find("known specs"),
              std::string::npos);
  }
  {
    const auto made = registry.tryCreate("warp");
    ASSERT_FALSE(made.ok());
    EXPECT_NE(made.status().message().find("registered:"),
              std::string::npos);
    EXPECT_NE(made.status().message().find("hog"), std::string::npos);
  }
  EXPECT_FALSE(registry.tryCreate("napprox:128spike").ok());  // > 64
  EXPECT_FALSE(registry.tryCreate("napprox:0spike").ok());
  EXPECT_THROW(registry.create("parrot:9spike"), std::invalid_argument);

  // Every valid deployment spec still constructs.
  for (const std::string& spec : extract::table2Specs()) {
    const auto made = registry.tryCreate(spec);
    EXPECT_TRUE(made.ok()) << spec << ": " << made.status().toString();
  }
}

// --- Graceful degradation in the detector and pipeline ----------------------

/// HoG-backed extractor whose backend "fails" on small pyramid levels --
/// the deterministic stand-in for a poisoned level or a simulator fault.
class FlakyExtractor : public extract::FeatureExtractor {
 public:
  explicit FlakyExtractor(int failBelowWidth)
      : FeatureExtractor("flaky", extract::FeatureLayout::kFlatCell, 9, 2, 2),
        failBelowWidth_(failBelowWidth) {}

  hog::CellGrid cellGrid(const vision::Image& image) override {
    if (image.width() < failBelowWidth_) {
      throw std::runtime_error("flaky backend: level poisoned");
    }
    return hogRef_.computeCells(image);
  }

  extract::ExtractorInfo info() const override { return {}; }

 private:
  int failBelowWidth_;
  hog::HogExtractor hogRef_;
};

TEST(GridDetector, SkipsPoisonedLevelsAndReportsDegradation) {
  core::GridDetectorParams params;
  params.scoreThreshold = -1e9f;
  params.pyramid.maxLevels = 4;
  auto scorer = [](const std::vector<float>&) { return 1.0f; };
  vision::Image scene(128, 128, 0.5f);
  for (int y = 0; y < 128; ++y) {
    for (int x = 0; x < 128; ++x) {
      scene.at(x, y) = static_cast<float>((x + y) % 17) / 17.0f;
    }
  }

  // Levels are 128, ~116, ~105, ~96 wide; the last two fail.
  core::GridDetector detector(params, std::make_shared<FlakyExtractor>(110),
                              scorer);
  core::DegradationReport report;
  const auto detections = detector.detect(scene, -1e9f, &report);
  EXPECT_FALSE(detections.empty());  // surviving levels still detect
  EXPECT_EQ(report.levelsSkipped, 2);
  EXPECT_GT(report.windowsLost, 0);
  ASSERT_EQ(report.skips.size(), 2u);
  EXPECT_FALSE(report.skips[0].status.ok());
  EXPECT_TRUE(report.degraded());
  EXPECT_NE(report.summary().find("degraded"), std::string::npos);

  // A healthy detector leaves the report clean.
  core::GridDetector healthy(params, std::make_shared<FlakyExtractor>(0),
                             scorer);
  core::DegradationReport healthyReport;
  // Pre-NMS, the healthy detector keeps every window the degraded one kept
  // plus the two recovered levels' worth.
  const auto healthyRaw = healthy.detectRaw(scene, -1e9f, &healthyReport);
  const auto degradedRaw = detector.detectRaw(scene, -1e9f, nullptr);
  EXPECT_GT(healthyRaw.size(), degradedRaw.size());
  EXPECT_FALSE(healthyReport.degraded());
  EXPECT_EQ(healthyReport.summary(), "healthy");
}

/// Extractor that fails on specific "poisoned" windows (bright first
/// pixel), for the pipeline's per-window degradation path.
class PoisonableExtractor : public extract::FeatureExtractor {
 public:
  PoisonableExtractor()
      : FeatureExtractor("poisonable", extract::FeatureLayout::kFlatCell, 9,
                         2, 2) {}

  hog::CellGrid cellGrid(const vision::Image& image) override {
    if (image.at(0, 0) > 0.9f) {
      throw std::runtime_error("poisonable backend: window poisoned");
    }
    return hogRef_.computeCells(image);
  }

  extract::ExtractorInfo info() const override { return {}; }

 private:
  hog::HogExtractor hogRef_;
};

TEST(PartitionedPipeline, ScoreAllDegradedLosesOnlyPoisonedWindows) {
  eedn::EednClassifierConfig config;
  config.inputSize = 2 * 2 * 9;
  config.groupInputSize = 36;
  config.outputsPerGroup = 8;
  config.hiddenWidths = {16};
  config.outputPopulation = 2;
  core::PartitionedPipeline pipeline(std::make_shared<PoisonableExtractor>(),
                                     config);

  std::vector<vision::Image> windows = {vision::Image(16, 16, 0.2f),
                                        vision::Image(16, 16, 0.95f),
                                        vision::Image(16, 16, 0.4f)};
  core::DegradationReport report;
  const std::vector<float> scores =
      pipeline.scoreAllDegraded(windows, &report);
  ASSERT_EQ(scores.size(), windows.size());
  EXPECT_TRUE(std::isfinite(scores[0]));
  EXPECT_TRUE(std::isnan(scores[1]));  // poisoned window lost, not fatal
  EXPECT_TRUE(std::isfinite(scores[2]));
  EXPECT_EQ(report.windowsLost, 1);
  EXPECT_TRUE(report.degraded());

  // All-healthy batch: no losses, no degradation.
  core::DegradationReport cleanReport;
  const std::vector<float> cleanScores = pipeline.scoreAllDegraded(
      {vision::Image(16, 16, 0.3f)}, &cleanReport);
  ASSERT_EQ(cleanScores.size(), 1u);
  EXPECT_TRUE(std::isfinite(cleanScores[0]));
  EXPECT_FALSE(cleanReport.degraded());
}

TEST(FeatureExtractor, TryPathsReturnTypedErrors) {
  auto extractor = extract::makeExtractor("hog");
  const auto empty = extractor->tryCellGrid(vision::Image());
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  const auto tiny = extractor->tryWindowFeatures(vision::Image(8, 8, 0.5f));
  ASSERT_FALSE(tiny.ok());
  EXPECT_EQ(tiny.status().code(), StatusCode::kInvalidArgument);

  const auto good = extractor->tryCellGrid(vision::Image(64, 128, 0.5f));
  ASSERT_TRUE(good.ok()) << good.status().toString();
  EXPECT_EQ(good->cellsX, 8);
}

}  // namespace
}  // namespace pcnn
