#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"
#include "hog/fixed_point.hpp"
#include "hog/gradient.hpp"
#include "hog/hog.hpp"
#include "hog/visualize.hpp"
#include "vision/synth.hpp"

namespace pcnn::hog {
namespace {

vision::Image horizontalRamp(int w, int h, float slope) {
  vision::Image img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) img.at(x, y) = slope * static_cast<float>(x);
  }
  return img;
}

vision::Image verticalRamp(int w, int h, float slope) {
  vision::Image img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) img.at(x, y) = slope * static_cast<float>(y);
  }
  return img;
}

TEST(Gradient, CentredDifferenceOnRamp) {
  const auto field = computeGradients(horizontalRamp(8, 8, 0.1f));
  // Interior pixels: Ix = v(x+1) - v(x-1) = 0.2, Iy = 0.
  EXPECT_NEAR(field.gx(4, 4), 0.2f, 1e-5f);
  EXPECT_NEAR(field.gy(4, 4), 0.0f, 1e-5f);
}

TEST(Gradient, SignConventionMatchesPaperDiagram) {
  // Iy = P1 - P7 = pixel above minus pixel below (rows top-down).
  const auto field = computeGradients(verticalRamp(8, 8, 0.1f));
  EXPECT_NEAR(field.gy(4, 4), -0.2f, 1e-5f);
  EXPECT_NEAR(field.gx(4, 4), 0.0f, 1e-5f);
}

TEST(Gradient, BorderUsesClamping) {
  const auto field = computeGradients(horizontalRamp(8, 8, 0.1f));
  // At x=0, Ix = v(1) - v(0) = 0.1 (replicated border).
  EXPECT_NEAR(field.gx(0, 4), 0.1f, 1e-5f);
}

TEST(HogExtractor, VerticalEdgeVotesHorizontalGradientBin) {
  // Vertical edge => gradient points along +x => angle 0 => bin 0 (0-20deg).
  vision::Image img(16, 16, 0.0f);
  for (int y = 0; y < 16; ++y) {
    for (int x = 8; x < 16; ++x) img.at(x, y) = 1.0f;
  }
  HogParams params;
  params.bilinearBinning = false;
  const HogExtractor hog(params);
  const auto hist = hog.cellHistogram(img, 4, 4);
  const int best = static_cast<int>(
      std::max_element(hist.begin(), hist.end()) - hist.begin());
  EXPECT_EQ(best, 0);
}

TEST(HogExtractor, HorizontalEdgeVotesVerticalGradientBin) {
  vision::Image img(16, 16, 0.0f);
  for (int y = 8; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) img.at(x, y) = 1.0f;
  }
  HogParams params;
  params.bilinearBinning = false;
  const HogExtractor hog(params);
  const auto hist = hog.cellHistogram(img, 4, 4);
  const int best = static_cast<int>(
      std::max_element(hist.begin(), hist.end()) - hist.begin());
  // 90 degrees falls in bin 4 of 9 unsigned 20-degree bins.
  EXPECT_EQ(best, 4);
}

TEST(HogExtractor, FlatCellHasEmptyHistogram) {
  vision::Image img(16, 16, 0.7f);
  const HogExtractor hog;
  const auto hist = hog.cellHistogram(img, 4, 4);
  for (float v : hist) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(HogExtractor, WeightedVoteSumsMagnitudes) {
  const auto img = horizontalRamp(16, 16, 0.05f);
  HogParams params;
  params.bilinearBinning = false;
  const HogExtractor hog(params);
  const auto hist = hog.cellHistogram(img, 4, 4);
  const float total = std::accumulate(hist.begin(), hist.end(), 0.0f);
  // 64 pixels, each with |grad| = 0.1.
  EXPECT_NEAR(total, 64 * 0.1f, 1e-4f);
}

TEST(HogExtractor, CountVoteCountsPixels) {
  const auto img = horizontalRamp(16, 16, 0.05f);
  HogParams params;
  params.weightedVote = false;
  params.bilinearBinning = false;
  const HogExtractor hog(params);
  const auto hist = hog.cellHistogram(img, 4, 4);
  EXPECT_NEAR(std::accumulate(hist.begin(), hist.end(), 0.0f), 64.0f, 1e-4f);
}

TEST(HogExtractor, BilinearSplitsVoteBetweenBins) {
  HogParams params;
  params.bilinearBinning = true;
  const HogExtractor hog(params);
  // 30-degree gradient: between bin centres 10deg (bin 0) and 30deg (bin 1).
  vision::Image img(16, 16);
  const float angle = 30.0f * 3.14159265f / 180.0f;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      img.at(x, y) = 0.05f * (std::cos(angle) * x - std::sin(angle) * y);
    }
  }
  const auto hist = hog.cellHistogram(img, 4, 4);
  // Gradient angle is exactly the bin-1 centre: the whole vote lands there.
  const int best = static_cast<int>(
      std::max_element(hist.begin(), hist.end()) - hist.begin());
  EXPECT_EQ(best, 1);
}

TEST(HogExtractor, DescriptorSizeMatchesDalal) {
  HogParams params;  // 9 bins
  const HogExtractor hog(params);
  EXPECT_EQ(hog.descriptorSize(64, 128), 3780);  // 7*15*4*9

  HogParams params18 = params;
  params18.numBins = 18;
  params18.signedOrientation = true;
  const HogExtractor hog18(params18);
  // The paper's 7,560 = 7*15*18*4 feature elements per window.
  EXPECT_EQ(hog18.descriptorSize(64, 128), 7560);
}

TEST(HogExtractor, WindowDescriptorLengthMatches) {
  const HogExtractor hog;
  vision::Image window(64, 128, 0.5f);
  EXPECT_EQ(static_cast<int>(hog.windowDescriptor(window).size()),
            hog.descriptorSize(64, 128));
}

TEST(HogExtractor, L2NormalizedBlocksHaveUnitOrZeroNorm) {
  pcnn::Rng rng(17);
  vision::SyntheticPersonDataset dataset;
  const vision::Image window = dataset.positiveWindow(rng);
  HogParams params;
  params.l2Epsilon = 1e-6f;
  const HogExtractor hog(params);
  const auto desc = hog.windowDescriptor(window);
  const int blockLen = 4 * params.numBins;
  ASSERT_EQ(desc.size() % blockLen, 0u);
  for (std::size_t b = 0; b < desc.size(); b += blockLen) {
    double norm = 0.0;
    for (int i = 0; i < blockLen; ++i) norm += desc[b + i] * desc[b + i];
    norm = std::sqrt(norm);
    EXPECT_TRUE(norm < 1e-3 || std::abs(norm - 1.0) < 1e-2)
        << "block norm " << norm;
  }
}

TEST(HogExtractor, CellDescriptorIsFlatGrid) {
  HogParams params;
  params.numBins = 18;
  params.signedOrientation = true;
  const HogExtractor hog(params);
  vision::Image window(64, 128, 0.5f);
  EXPECT_EQ(hog.cellDescriptor(window).size(),
            static_cast<std::size_t>(8 * 16 * 18));
}

TEST(HogExtractor, InvalidParamsThrow) {
  HogParams params;
  params.cellSize = 0;
  EXPECT_THROW(HogExtractor{params}, std::invalid_argument);
}

TEST(FixedPointHog, MagnitudeApproximationWithinBounds) {
  // alpha-max-beta-min with beta=3/8: error < 8% of the true magnitude
  // once the (3*min)>>3 term has enough bits; tiny components only see
  // integer truncation, bounded separately below.
  for (int ix = -48; ix <= 48; ix += 8) {
    for (int iy = -48; iy <= 48; iy += 8) {
      if (ix == 0 && iy == 0) continue;
      const double exact = std::sqrt(static_cast<double>(ix) * ix +
                                     static_cast<double>(iy) * iy);
      const double approx = FixedPointHog::approxMagnitude(ix, iy);
      const int mn = std::min(std::abs(ix), std::abs(iy));
      if (mn == 0 || mn >= 8) {
        EXPECT_NEAR(approx / exact, 1.0, 0.08)
            << "ix=" << ix << " iy=" << iy;
      }
      // Truncation never over-estimates and never drops below max(|x|,|y|).
      EXPECT_LE(approx, exact * 1.08);
      EXPECT_GE(approx, std::max(std::abs(ix), std::abs(iy)));
    }
  }
}

TEST(FixedPointHog, IntegerSqrt) {
  EXPECT_EQ(FixedPointHog::isqrt(0), 0u);
  EXPECT_EQ(FixedPointHog::isqrt(1), 1u);
  EXPECT_EQ(FixedPointHog::isqrt(15), 3u);
  EXPECT_EQ(FixedPointHog::isqrt(16), 4u);
  EXPECT_EQ(FixedPointHog::isqrt(1000000), 1000u);
  EXPECT_EQ(FixedPointHog::isqrt(999999), 999u);
}

TEST(FixedPointHog, OrientationBinMatchesFloatAtan) {
  const FixedPointHog hog;
  pcnn::Rng rng(23);
  int disagreements = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const int ix = rng.uniformInt(-255, 255);
    const int iy = rng.uniformInt(-255, 255);
    if (ix == 0 && iy == 0) continue;
    double angle = std::atan2(static_cast<double>(iy),
                              static_cast<double>(ix)) * 180.0 / M_PI;
    if (angle < 0) angle += 360.0;
    if (angle >= 180.0) angle -= 180.0;
    int expected = static_cast<int>(angle / 20.0);
    if (expected > 8) expected = 8;
    if (hog.orientationBin(ix, iy) != expected) ++disagreements;
  }
  // Boundary rounding may flip a handful of near-boundary angles.
  EXPECT_LT(disagreements, trials / 100);
}

TEST(FixedPointHog, EvenBinCountRejected) {
  FixedPointHogParams params;
  params.numBins = 8;
  EXPECT_THROW(FixedPointHog{params}, std::invalid_argument);
}

TEST(FixedPointHog, DescriptorMatchesFloatHogQualitatively) {
  // The fixed-point pipeline must produce features highly correlated with
  // the float reference on the same window.
  pcnn::Rng rng(31);
  vision::SyntheticPersonDataset dataset;
  const vision::Image window = dataset.positiveWindow(rng);

  const FixedPointHog fixedHog;
  HogParams floatParams;
  floatParams.bilinearBinning = false;  // fixed-point bins to nearest
  const HogExtractor floatHog(floatParams);

  const auto fixedDesc = fixedHog.windowDescriptor(window);
  const auto floatDesc = floatHog.windowDescriptor(window);
  ASSERT_EQ(fixedDesc.size(), floatDesc.size());

  double dot = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < fixedDesc.size(); ++i) {
    dot += fixedDesc[i] * floatDesc[i];
    na += fixedDesc[i] * fixedDesc[i];
    nb += floatDesc[i] * floatDesc[i];
  }
  const double cosine = dot / std::sqrt(na * nb);
  EXPECT_GT(cosine, 0.95);
}

TEST(Visualize, GlyphImageGeometryAndContent) {
  pcnn::Rng rng(41);
  vision::SyntheticPersonDataset dataset;
  const vision::Image window = dataset.positiveWindow(rng);
  const HogExtractor hog;
  const CellGrid grid = hog.computeCells(window);
  const vision::RgbImage glyphs = renderHogGlyphs(grid, false, 12);
  EXPECT_EQ(glyphs.width(), grid.cellsX * 12);
  EXPECT_EQ(glyphs.height(), grid.cellsY * 12);
  // A textured window must render visible (above-background) strokes.
  int bright = 0;
  for (std::size_t i = 0; i < glyphs.data().size(); i += 3) {
    if (glyphs.data()[i] > 0.3f) ++bright;
  }
  EXPECT_GT(bright, 100);
}

TEST(Visualize, EmptyGridRendersBackgroundOnly) {
  CellGrid grid;
  grid.cellsX = 2;
  grid.cellsY = 2;
  grid.bins = 9;
  grid.data.assign(2 * 2 * 9, 0.0f);
  const vision::RgbImage glyphs = renderHogGlyphs(grid, false);
  for (std::size_t i = 0; i < glyphs.data().size(); i += 3) {
    EXPECT_LT(glyphs.data()[i], 0.2f);
  }
}

TEST(FixedPointHog, CellGridGeometry) {
  const FixedPointHog hog;
  vision::Image img(64, 128, 0.5f);
  const auto grid = hog.computeCells(img);
  EXPECT_EQ(grid.cellsX, 8);
  EXPECT_EQ(grid.cellsY, 16);
  EXPECT_EQ(grid.bins, 9);
}

// --- Cached-grid descriptor parity ---------------------------------------

vision::Image syntheticWindow(std::uint64_t seed) {
  vision::SyntheticPersonDataset synth;
  Rng rng(seed);
  return synth.positiveWindow(rng);
}

TEST(HogExtractor, GridDescriptorMatchesWindowDescriptorBitwise) {
  const HogExtractor hog;
  const vision::Image window = syntheticWindow(3);
  const CellGrid grid = hog.computeCells(window);
  const auto fromGrid =
      hog.windowDescriptorFromGrid(grid, 0, 0, grid.cellsX, grid.cellsY);
  const auto reference = hog.windowDescriptor(window);
  ASSERT_EQ(fromGrid.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(fromGrid[i], reference[i]) << "mismatch at " << i;
  }
}

TEST(HogExtractor, GridDescriptorSliceMatchesManualSubGrid) {
  // Slicing a window out of a larger scene grid must equal assembling the
  // same descriptor from an explicitly copied sub-grid.
  const HogExtractor hog;
  vision::SyntheticPersonDataset synth;
  Rng rng(11);
  const vision::Image scene = synth.scene(rng, 160, 192, 1).image;
  const CellGrid grid = hog.computeCells(scene);
  const int cx0 = 3, cy0 = 2, wcx = 8, wcy = 16;
  CellGrid sub;
  sub.cellsX = wcx;
  sub.cellsY = wcy;
  sub.bins = grid.bins;
  for (int cy = 0; cy < wcy; ++cy) {
    for (int cx = 0; cx < wcx; ++cx) {
      const float* src = grid.cell(cx0 + cx, cy0 + cy);
      sub.data.insert(sub.data.end(), src, src + grid.bins);
    }
  }
  const auto sliced = hog.windowDescriptorFromGrid(grid, cx0, cy0, wcx, wcy);
  const auto copied = hog.blocksFromGrid(sub);
  ASSERT_EQ(sliced.size(), copied.size());
  for (std::size_t i = 0; i < sliced.size(); ++i) {
    EXPECT_EQ(sliced[i], copied[i]) << "mismatch at " << i;
  }
}

TEST(HogExtractor, GridDescriptorOutOfRangeThrows) {
  const HogExtractor hog;
  const CellGrid grid = hog.computeCells(vision::Image(64, 128, 0.5f));
  EXPECT_THROW(hog.windowDescriptorFromGrid(grid, 1, 0, 8, 16),
               std::invalid_argument);
  EXPECT_THROW(hog.windowDescriptorFromGrid(grid, 0, 1, 8, 16),
               std::invalid_argument);
}

TEST(FixedPointHog, GridDescriptorMatchesWindowDescriptorBitwise) {
  const FixedPointHog hog;
  const vision::Image window = syntheticWindow(5);
  const auto grid = hog.computeCells(window);
  const auto fromGrid =
      hog.windowDescriptorFromGrid(grid, 0, 0, grid.cellsX, grid.cellsY);
  const auto reference = hog.windowDescriptor(window);
  ASSERT_EQ(fromGrid.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(fromGrid[i], reference[i]) << "mismatch at " << i;
  }
}

TEST(FixedPointHog, GridDescriptorSliceMatchesFullGridPrefix) {
  // The fixed-point path normalizes each block independently, so a slice
  // anchored at (0,0) of the full grid must reproduce the corresponding
  // prefix blocks of blocksFromGrid bitwise.
  const FixedPointHog hog;
  vision::SyntheticPersonDataset synth;
  Rng rng(13);
  const vision::Image scene = synth.scene(rng, 128, 160, 1).image;
  const auto grid = hog.computeCells(scene);
  const auto sliced = hog.windowDescriptorFromGrid(grid, 0, 0, 2, 2);
  // 2x2 cells -> exactly one 2x2 block: the first block of the full grid.
  const auto full = hog.blocksFromGrid(grid);
  ASSERT_EQ(sliced.size(), 4u * static_cast<std::size_t>(grid.bins));
  for (std::size_t i = 0; i < sliced.size(); ++i) {
    EXPECT_EQ(sliced[i], full[i]) << "mismatch at " << i;
  }
}

}  // namespace
}  // namespace pcnn::hog
