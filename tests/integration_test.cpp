// End-to-end integration tests crossing module boundaries: extractor ->
// classifier -> detector -> evaluation, exercising the pipelines that the
// Figure 4 / Figure 5 benches sweep at larger scale.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "eedn/mapper.hpp"
#include "eval/detection_eval.hpp"
#include "eval/stats.hpp"
#include "extract/registry.hpp"
#include "hog/hog.hpp"
#include "napprox/napprox.hpp"
#include "svm/linear_svm.hpp"
#include "svm/mining.hpp"
#include "vision/synth.hpp"

namespace pcnn {
namespace {

struct Dataset {
  std::vector<vision::Image> positives;
  std::vector<vision::Image> negatives;
  std::vector<vision::Scene> testScenes;
};

Dataset makeDataset(int trainCount, int sceneCount, std::uint64_t seed) {
  Dataset data;
  vision::SyntheticPersonDataset synth;
  Rng rng(seed);
  for (int i = 0; i < trainCount; ++i) {
    data.positives.push_back(synth.positiveWindow(rng));
    data.negatives.push_back(synth.negativeWindow(rng));
  }
  for (int i = 0; i < sceneCount; ++i) {
    data.testScenes.push_back(synth.scene(rng, 256, 256, 1, 96, 140));
  }
  return data;
}

TEST(Integration, SvmOnHogSeparatesSyntheticPeople) {
  const Dataset data = makeDataset(80, 0, 1);
  const hog::HogExtractor extractor;  // classic 9-bin HoG
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (const auto& w : data.positives) {
    x.push_back(extractor.windowDescriptor(w));
    y.push_back(1);
  }
  for (const auto& w : data.negatives) {
    x.push_back(extractor.windowDescriptor(w));
    y.push_back(-1);
  }
  svm::LinearSvm model;
  model.train(x, y);
  EXPECT_GT(model.accuracy(x, y), 0.95);

  // Held-out windows.
  vision::SyntheticPersonDataset synth;
  Rng rng(555);
  int correct = 0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    const bool positive = i % 2 == 0;
    const vision::Image w =
        positive ? synth.positiveWindow(rng) : synth.negativeWindow(rng);
    if (model.predict(extractor.windowDescriptor(w)) == (positive ? 1 : -1)) {
      ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / trials, 0.75);
}

TEST(Integration, NApproxFeaturesMatchSvmQuality) {
  // NApprox(fp) features should be roughly as separable as classic HoG
  // (the Figure 4 claim, in miniature).
  const Dataset data = makeDataset(60, 0, 2);
  const napprox::NApproxHog napproxHog;
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (const auto& w : data.positives) {
    x.push_back(napproxHog.windowDescriptor(w));
    y.push_back(1);
  }
  for (const auto& w : data.negatives) {
    x.push_back(napproxHog.windowDescriptor(w));
    y.push_back(-1);
  }
  svm::LinearSvm model;
  model.train(x, y);
  EXPECT_GT(model.accuracy(x, y), 0.9);
}

TEST(Integration, DetectorFindsScenePeopleWithSvm) {
  const Dataset data = makeDataset(70, 3, 3);
  const auto featureHog =
      extract::makeExtractor("napprox", extract::FeatureLayout::kFlatCell);

  // Train an SVM on flat cell features (cheap assembly in the detector).
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (const auto& w : data.positives) {
    x.push_back(featureHog->windowFeatures(w));
    y.push_back(1);
  }
  for (const auto& w : data.negatives) {
    x.push_back(featureHog->windowFeatures(w));
    y.push_back(-1);
  }
  svm::LinearSvm model;
  model.train(x, y);

  core::GridDetectorParams params;
  params.scoreThreshold = 0.0f;
  core::GridDetector detector(
      params, featureHog, [&model](const std::vector<float>& f) {
        return static_cast<float>(model.decision(f));
      });

  std::vector<eval::ImageResult> results;
  for (const auto& scene : data.testScenes) {
    eval::ImageResult r;
    r.detections = detector.detect(scene.image);
    r.groundTruth = scene.groundTruth;
    results.push_back(std::move(r));
  }
  const eval::Counts counts = eval::evaluateAtThreshold(results, 0.0f, 0.5f);
  // At least some people found across the scenes.
  EXPECT_GT(counts.truePositives, 0);
}

TEST(Integration, MissRateCurveImprovesWithBetterScores) {
  // Sanity link between classifier quality and the evaluation curve: a
  // random scorer yields a worse log-average miss rate than the SVM.
  const Dataset data = makeDataset(60, 2, 4);
  const auto featureHog =
      extract::makeExtractor("napprox", extract::FeatureLayout::kFlatCell);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (const auto& w : data.positives) {
    x.push_back(featureHog->windowFeatures(w));
    y.push_back(1);
  }
  for (const auto& w : data.negatives) {
    x.push_back(featureHog->windowFeatures(w));
    y.push_back(-1);
  }
  svm::LinearSvm model;
  model.train(x, y);

  auto makeResults = [&](bool random) {
    Rng noiseRng(7);
    core::GridDetectorParams params;
    params.scoreThreshold = -1e9f;
    core::GridDetector detector(
        params, featureHog, [&](const std::vector<float>& f) {
          return random ? static_cast<float>(noiseRng.uniform(-1, 1))
                        : static_cast<float>(model.decision(f));
        });
    std::vector<eval::ImageResult> results;
    for (const auto& scene : data.testScenes) {
      eval::ImageResult r;
      r.detections = detector.detect(scene.image);
      r.groundTruth = scene.groundTruth;
      results.push_back(std::move(r));
    }
    return results;
  };

  const float svmLamr =
      eval::logAverageMissRate(eval::missRateCurve(makeResults(false)));
  const float randomLamr =
      eval::logAverageMissRate(eval::missRateCurve(makeResults(true)));
  EXPECT_LE(svmLamr, randomLamr + 1e-6f);
}

TEST(Integration, TrainedClassifierRunsOnTrueNorthSimulator) {
  // The paper's systems story end-to-end: train an Eedn classifier on
  // (binarized) NApprox features, deploy it onto the neurosynaptic
  // simulator with the mapper, and verify the on-chip classification
  // matches the reference semantics spike for spike.
  vision::SyntheticPersonDataset synth;
  Rng rng(31);
  const napprox::NApproxHog featureHog;

  // Binarize cell features (vote count >= 4) so the deployed network
  // consumes single-tick binary inputs; restrict to the first 120 feature
  // dims to keep the mapped fan-in within one core for this test.
  auto binaryFeatures = [&](const vision::Image& w) {
    const auto counts = featureHog.cellDescriptor(w);
    std::vector<float> bits(120);
    for (int i = 0; i < 120; ++i) bits[i] = counts[i] >= 4.0f ? 1.0f : 0.0f;
    return bits;
  };

  eedn::EednClassifierConfig config;
  config.inputSize = 120;
  config.groupInputSize = 120;
  config.outputsPerGroup = 16;
  config.hiddenWidths = {};
  config.outputPopulation = 8;
  config.seed = 9;
  eedn::EednClassifier classifier(config);

  eedn::BinaryDataset data;
  for (int i = 0; i < 60; ++i) {
    data.features.push_back(binaryFeatures(synth.positiveWindow(rng)));
    data.labels.push_back(1);
    data.features.push_back(binaryFeatures(synth.negativeWindow(rng)));
    data.labels.push_back(-1);
  }
  for (int epoch = 0; epoch < 25; ++epoch) {
    classifier.trainEpoch(data, 0.05f);
  }

  auto mapped = eedn::TnMapper::map(classifier.net());
  int simMatchesReference = 0;
  int simAgreesWithFloat = 0;
  const int probes = 30;
  for (int i = 0; i < probes; ++i) {
    std::vector<int> bits(120);
    for (int d = 0; d < 120; ++d) {
      bits[d] = data.features[i][d] > 0.5f ? 1 : 0;
    }
    const auto simOut = mapped->forwardSpikes(bits);
    if (simOut == mapped->referenceForward(bits)) ++simMatchesReference;

    // Population vote on simulator spikes vs the float classifier's sign.
    int person = 0, background = 0;
    for (int p = 0; p < config.outputPopulation; ++p) {
      background += simOut[p];
      person += simOut[config.outputPopulation + p];
    }
    const int simPrediction = person >= background ? 1 : -1;
    if (simPrediction == classifier.predict(data.features[i])) {
      ++simAgreesWithFloat;
    }
  }
  EXPECT_EQ(simMatchesReference, probes);  // simulator == integer reference
  // Bias rounding can flip borderline population votes; demand strong but
  // not perfect agreement with the float-bias network.
  EXPECT_GE(simAgreesWithFloat, probes * 3 / 4);
}

TEST(Integration, HardNegativeMiningReducesSceneFalsePositives) {
  vision::SyntheticPersonDataset synth;
  Rng rng(11);
  std::vector<vision::Image> pos, neg, negScenes;
  for (int i = 0; i < 50; ++i) {
    pos.push_back(synth.positiveWindow(rng));
    neg.push_back(synth.negativeWindow(rng));
  }
  for (int i = 0; i < 2; ++i) {
    negScenes.push_back(synth.scene(rng, 192, 192, 0).image);
  }
  const hog::HogExtractor extractor;
  auto fn = [&extractor](const vision::Image& w) {
    return extractor.windowDescriptor(w);
  };
  svm::LinearSvm model;
  svm::MiningParams params;
  params.scan.strideX = 16;
  params.scan.strideY = 16;
  params.scan.pyramid.maxLevels = 2;
  const auto result =
      trainWithHardNegatives(model, fn, pos, neg, negScenes, params);
  EXPECT_GE(result.minedNegatives, 0);
  EXPECT_GT(result.finalTrainAccuracy, 0.9);
}

}  // namespace
}  // namespace pcnn
