// Thread-pool semantics plus the library-wide determinism contract: every
// parallelized substrate must produce identical results with 1 thread and
// with several.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/detector.hpp"
#include "extract/registry.hpp"
#include "hog/hog.hpp"
#include "nn/conv2d.hpp"
#include "tn/network.hpp"
#include "vision/synth.hpp"

namespace pcnn {
namespace {

class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : saved_(threadCount()) {
    setThreadCount(n);
  }
  ~ThreadCountGuard() { setThreadCount(saved_); }

 private:
  int saved_;
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  parallelFor(0, 1000, [&](long i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  ThreadCountGuard guard(4);
  int calls = 0;
  parallelFor(5, 5, [&](long) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> atomicCalls{0};
  parallelFor(7, 8, [&](long i) {
    EXPECT_EQ(i, 7);
    atomicCalls.fetch_add(1);
  });
  EXPECT_EQ(atomicCalls.load(), 1);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadCountGuard guard(4);
  EXPECT_THROW(parallelFor(0, 100,
                           [](long i) {
                             if (i == 37) {
                               throw std::runtime_error("boom");
                             }
                           }),
               std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<long> sum{0};
  parallelFor(0, 10, [&](long i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadCountGuard guard(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  parallelFor(0, 8, [&](long outer) {
    // Nested parallelFor must not deadlock; it runs inline on this thread.
    parallelFor(0, 8, [&](long inner) { hits[outer * 8 + inner].fetch_add(1); });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForChunked, ChunkBoundariesIndependentOfThreadCount) {
  auto collect = [](int threads) {
    ThreadCountGuard guard(threads);
    std::vector<std::pair<long, long>> chunks(100, {-1, -1});
    std::atomic<int> next{0};
    parallelForChunked(0, 103, 10, [&](long b, long e) {
      chunks[static_cast<std::size_t>(next.fetch_add(1))] = {b, e};
    });
    chunks.resize(static_cast<std::size_t>(next.load()));
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  EXPECT_EQ(collect(1), collect(4));
}

TEST(ParallelDeterminism, HogCellsIdenticalAcrossThreadCounts) {
  vision::SyntheticPersonDataset synth;
  Rng rng(21);
  const vision::Image scene = synth.scene(rng, 192, 160, 1).image;
  const hog::HogExtractor hog;
  std::vector<float> oneThread, fourThreads;
  {
    ThreadCountGuard guard(1);
    oneThread = hog.computeCells(scene).data;
  }
  {
    ThreadCountGuard guard(4);
    fourThreads = hog.computeCells(scene).data;
  }
  ASSERT_EQ(oneThread.size(), fourThreads.size());
  for (std::size_t i = 0; i < oneThread.size(); ++i) {
    EXPECT_EQ(oneThread[i], fourThreads[i]) << "cell value differs at " << i;
  }
}

TEST(ParallelDeterminism, Conv2dForwardBackwardIdentical) {
  auto runOnce = [](int threads) {
    ThreadCountGuard guard(threads);
    Rng rng(5);
    nn::Conv2d conv(3, 12, 12, 8, 3, 1, rng);
    std::vector<float> input(static_cast<std::size_t>(conv.inputSize()));
    Rng inRng(9);
    for (auto& v : input) v = static_cast<float>(inRng.uniform()) - 0.5f;
    auto out = conv.forward(input, /*train=*/true);
    std::vector<float> gradOut(out.size());
    Rng gRng(17);
    for (auto& v : gradOut) v = static_cast<float>(gRng.uniform()) - 0.5f;
    auto gradIn = conv.backward(gradOut);
    out.insert(out.end(), gradIn.begin(), gradIn.end());
    return out;
  };
  const auto oneThread = runOnce(1);
  const auto fourThreads = runOnce(4);
  ASSERT_EQ(oneThread.size(), fourThreads.size());
  for (std::size_t i = 0; i < oneThread.size(); ++i) {
    EXPECT_EQ(oneThread[i], fourThreads[i]) << "value differs at " << i;
  }
}

TEST(ParallelDeterminism, TnNetworkIdenticalAcrossThreadCounts) {
  auto runOnce = [](int threads) {
    ThreadCountGuard guard(threads);
    tn::Network net(77);
    Rng rng(77);
    for (int c = 0; c < 4; ++c) net.addCore();
    for (int c = 0; c < 4; ++c) {
      tn::Core& core = net.core(c);
      for (int a = 0; a < 256; ++a) core.setAxonType(a, a % 4);
      for (int n = 0; n < 256; ++n) {
        auto& cfg = core.neuron(n);
        cfg.synapticWeights = {2, -1, 1, -2};
        cfg.threshold = 3;
        cfg.stochasticThreshold = (n % 2 == 0);
        cfg.resetMode = tn::ResetMode::kLinear;
        cfg.floorPotential = -32;
        cfg.recordOutput = (n < 8);
        cfg.dest = tn::Destination{(c + 1) % 4, (n * 7) % 256, 1 + n % 3};
      }
      for (int i = 0; i < 2048; ++i) {
        core.setConnection(rng.uniformInt(0, 255), rng.uniformInt(0, 255),
                           true);
      }
    }
    for (int t = 0; t < 8; ++t) {
      for (int a = 0; a < 32; ++a) net.scheduleInput(t, a % 4, (a * 5) % 256);
    }
    return net.run(32);
  };
  const auto one = runOnce(1);
  const auto four = runOnce(4);
  EXPECT_EQ(one.totalSpikes, four.totalSpikes);
  ASSERT_EQ(one.outputSpikes.size(), four.outputSpikes.size());
  for (std::size_t i = 0; i < one.outputSpikes.size(); ++i) {
    EXPECT_EQ(one.outputSpikes[i].tick, four.outputSpikes[i].tick);
    EXPECT_EQ(one.outputSpikes[i].core, four.outputSpikes[i].core);
    EXPECT_EQ(one.outputSpikes[i].neuron, four.outputSpikes[i].neuron);
  }
}

TEST(ParallelDeterminism, GridDetectorIdenticalAcrossThreadCounts) {
  vision::SyntheticPersonDataset synth;
  Rng rng(31);
  const vision::Image scene = synth.scene(rng, 224, 224, 2).image;
  core::GridDetectorParams params;
  params.scoreThreshold = -1e9f;  // keep every window's score
  params.pyramid.maxLevels = 3;
  const core::GridDetector detector(
      params,
      extract::makeExtractor("hog", extract::FeatureLayout::kBlockNorm),
      [](const std::vector<float>& f) {
        return std::accumulate(f.begin(), f.end(), 0.0f);
      });
  std::vector<vision::Detection> one, four;
  {
    ThreadCountGuard guard(1);
    one = detector.detectRaw(scene);
  }
  {
    ThreadCountGuard guard(4);
    four = detector.detectRaw(scene);
  }
  ASSERT_FALSE(one.empty());
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].score, four[i].score) << "score differs at window " << i;
    EXPECT_EQ(one[i].box.x, four[i].box.x);
    EXPECT_EQ(one[i].box.y, four[i].box.y);
    EXPECT_EQ(one[i].box.w, four[i].box.w);
    EXPECT_EQ(one[i].box.h, four[i].box.h);
  }
}

}  // namespace
}  // namespace pcnn
