// Tests for the serving layer (serve::DetectionService) and the per-call
// shed/deadline controls it drives in the detector:
//  - typed admission: kUnavailable when the bounded queue is full or the
//    ladder sits at the reject rung, kDeadlineExceeded for requests that
//    expire on the queue (dropped at dequeue, no detector work spent);
//  - the hysteresis-guarded degradation ladder (LoadController) stepping
//    down under synthetic overload and recovering;
//  - bitwise identity with direct detectBatch when nothing sheds, at 1
//    and 4 threads;
//  - DetectOptions/BatchOptions attribution into DegradationReport.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "core/detector.hpp"
#include "extract/registry.hpp"
#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "serve/service.hpp"
#include "vision/video.hpp"

namespace pcnn {
namespace {

using core::GridDetector;
using core::GridDetectorParams;
using serve::ControllerParams;
using serve::DetectionService;
using serve::LoadController;
using serve::Response;
using serve::ServiceLevel;
using serve::ServiceParams;
using vision::Image;

/// RAII env override restored to unset on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

/// A fixed deterministic linear scorer, optionally instrumented: every
/// invocation bumps `calls` (when given), sleeps `sleepUs` (slow-server
/// simulation), and blocks on `gate` until it opens (worker freezing).
struct Gate {
  std::mutex m;
  std::condition_variable cv;
  bool open = false;
  void release() {
    {
      std::lock_guard<std::mutex> lock(m);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [this] { return open; });
  }
};

core::WindowScorer instrumentedScorer(
    int dim, std::shared_ptr<std::atomic<long>> calls = nullptr,
    int sleepUs = 0, std::shared_ptr<Gate> gate = nullptr) {
  std::vector<float> weights(static_cast<std::size_t>(dim));
  Rng wrng(7);
  for (auto& w : weights) w = static_cast<float>(wrng.uniform()) - 0.5f;
  return [weights = std::move(weights), calls, sleepUs,
          gate](const std::vector<float>& f) {
    if (calls) calls->fetch_add(1, std::memory_order_relaxed);
    if (gate) gate->wait();
    if (sleepUs > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleepUs));
    }
    float acc = 0.0f;
    const std::size_t n =
        f.size() < weights.size() ? f.size() : weights.size();
    for (std::size_t i = 0; i < n; ++i) acc += weights[i] * f[i];
    return acc;
  };
}

std::shared_ptr<GridDetector> makeDetector(
    bool temporal, int maxLevels = 3,
    std::shared_ptr<std::atomic<long>> calls = nullptr, int sleepUs = 0,
    std::shared_ptr<Gate> gate = nullptr) {
  auto extractor =
      extract::makeExtractor("hog", extract::FeatureLayout::kBlockNorm);
  GridDetectorParams params;
  params.scoreThreshold = 2.0f;
  params.pyramid.maxLevels = maxLevels;
  params.temporal.enabled = temporal;
  params.temporal.smooth = false;
  return std::make_shared<GridDetector>(
      params, extractor,
      instrumentedScorer(extractor->featureDim(), std::move(calls), sleepUs,
                         std::move(gate)));
}

Image testFrame(int width = 320, int height = 240, std::uint64_t seed = 1,
                int index = 0) {
  vision::VideoParams vp;
  vp.width = width;
  vp.height = height;
  vp.numPersons = 1;
  vp.seed = seed;
  return vision::SyntheticVideo(vp).frame(index).image;
}

ServiceParams quietParams() {
  ServiceParams params;
  params.readEnv = false;  // tests control knobs explicitly
  return params;
}

bool waitUntil(const std::function<bool()>& predicate, int timeoutMs) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeoutMs);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

// ------------------------------------------------------------- naming

TEST(ServeStatus, NewStatusCodesHaveStableNames) {
  EXPECT_STREQ(statusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(statusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_EQ(Status::DeadlineExceeded("late").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_NE(Status::DeadlineExceeded("late").toString().find(
                "DEADLINE_EXCEEDED"),
            std::string::npos);
}

TEST(ServeLevel, NamesAreStable) {
  EXPECT_STREQ(serve::serviceLevelName(ServiceLevel::kFull), "full");
  EXPECT_STREQ(serve::serviceLevelName(ServiceLevel::kCoarse), "coarse");
  EXPECT_STREQ(serve::serviceLevelName(ServiceLevel::kFallback), "fallback");
  EXPECT_STREQ(serve::serviceLevelName(ServiceLevel::kReject), "reject");
}

// ---------------------------------------------------- LoadController

TEST(LoadController, StepsUpOneRungPerPressuredTick) {
  LoadController controller;
  EXPECT_EQ(controller.level(), 0);
  EXPECT_EQ(controller.onTick(80, 100, 0.0, 0.0), 1);  // util 0.8 > 0.75
  EXPECT_EQ(controller.onTick(80, 100, 0.0, 0.0), 2);
  EXPECT_EQ(controller.onTick(80, 100, 0.0, 0.0), 3);
  EXPECT_EQ(controller.onTick(80, 100, 0.0, 0.0), 3);  // clamped at reject
}

TEST(LoadController, LatencySignalDegradesIndependentlyOfQueue) {
  LoadController controller;
  // Empty queue, but windowed p99 at 95% of a 100ms deadline budget.
  EXPECT_EQ(controller.onTick(0, 100, 95'000.0, 100'000.0), 1);
  // No deadline budget: the latency signal is disabled, p99 is ignored.
  LoadController noDeadline;
  EXPECT_EQ(noDeadline.onTick(0, 100, 95'000.0, 0.0), 0);
}

TEST(LoadController, RecoversOnlyAfterConsecutiveCalmTicks) {
  ControllerParams params;
  params.recoverHoldTicks = 3;
  LoadController controller(params);
  controller.onTick(80, 100, 0.0, 0.0);
  controller.onTick(80, 100, 0.0, 0.0);
  ASSERT_EQ(controller.level(), 2);
  // Two calm ticks are not enough...
  EXPECT_EQ(controller.onTick(0, 100, 0.0, 0.0), 2);
  EXPECT_EQ(controller.onTick(0, 100, 0.0, 0.0), 2);
  // ...the third steps down one rung and restarts the hold.
  EXPECT_EQ(controller.onTick(0, 100, 0.0, 0.0), 1);
  EXPECT_EQ(controller.onTick(0, 100, 0.0, 0.0), 1);
  EXPECT_EQ(controller.onTick(0, 100, 0.0, 0.0), 1);
  EXPECT_EQ(controller.onTick(0, 100, 0.0, 0.0), 0);
}

TEST(LoadController, DeadBandNeitherDegradesNorRecovers) {
  ControllerParams params;
  params.recoverHoldTicks = 1;
  LoadController controller(params);
  controller.onTick(80, 100, 0.0, 0.0);
  ASSERT_EQ(controller.level(), 1);
  // Utilization between recoverQueueFrac (0.25) and degradeQueueFrac
  // (0.75): not pressured, but not calm either -- the level holds and the
  // calm streak resets, so an oscillating queue cannot flap the ladder.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(controller.onTick(50, 100, 0.0, 0.0), 1) << "tick " << i;
  }
  EXPECT_EQ(controller.onTick(0, 100, 0.0, 0.0), 0);
}

TEST(LoadController, CalmStreakResetByPressuredTick) {
  ControllerParams params;
  params.recoverHoldTicks = 2;
  LoadController controller(params);
  controller.onTick(80, 100, 0.0, 0.0);
  controller.onTick(80, 100, 0.0, 0.0);
  ASSERT_EQ(controller.level(), 2);
  EXPECT_EQ(controller.onTick(0, 100, 0.0, 0.0), 2);   // calm #1
  EXPECT_EQ(controller.onTick(80, 100, 0.0, 0.0), 3);  // pressure resets
  EXPECT_EQ(controller.onTick(0, 100, 0.0, 0.0), 3);   // calm #1 again
  EXPECT_EQ(controller.onTick(0, 100, 0.0, 0.0), 2);   // calm #2 -> down
}

// ------------------------------------------------- detector options

TEST(DetectOptions, DefaultOptionsAreBitwiseIdenticalToPlainDetect) {
  auto detector = makeDetector(/*temporal=*/false, /*maxLevels=*/2);
  const Image frame = testFrame();
  const auto plain = detector->detect(frame, 2.0f);
  core::DegradationReport report;
  const auto optioned =
      detector->detect(frame, 2.0f, &report, core::DetectOptions{});
  ASSERT_EQ(plain.size(), optioned.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].score, optioned[i].score);
    EXPECT_EQ(plain[i].box.x, optioned[i].box.x);
  }
  EXPECT_FALSE(report.degraded());
}

TEST(DetectOptions, SkipFinestLevelsIsAttributedAsUnavailable) {
  auto detector = makeDetector(/*temporal=*/false, /*maxLevels=*/3);
  const Image frame = testFrame();
  core::DegradationReport report;
  core::DetectOptions options;
  options.skipFinestLevels = 1;
  detector->detect(frame, 2.0f, &report, options);
  ASSERT_GE(report.levelsSkipped, 1);
  ASSERT_FALSE(report.skips.empty());
  EXPECT_EQ(report.skips[0].level, 0);  // the finest level goes first
  EXPECT_EQ(report.skips[0].status.code(), StatusCode::kUnavailable);
  EXPECT_GT(report.skips[0].windowsLost, 0);
}

TEST(DetectOptions, CancelAbandonsEveryLevelAsDeadlineExceeded) {
  auto detector = makeDetector(/*temporal=*/false, /*maxLevels=*/2);
  const Image frame = testFrame();
  core::DegradationReport report;
  core::DetectOptions options;
  options.cancel = [] { return true; };
  const auto detections = detector->detect(frame, 2.0f, &report, options);
  EXPECT_TRUE(detections.empty());
  ASSERT_GE(report.levelsSkipped, 1);
  for (const core::LevelSkip& skip : report.skips) {
    EXPECT_EQ(skip.status.code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(BatchOptions, PastDeadlineAbandonsAFrameMidBurst) {
  for (bool temporal : {false, true}) {
    auto detector = makeDetector(temporal, /*maxLevels=*/2);
    std::vector<Image> frames = {testFrame(320, 240, 1, 0),
                                 testFrame(320, 240, 1, 1)};
    core::BatchOptions options;
    options.deadlineUs = {0.0, 1.0};  // frame 1's deadline passed long ago
    std::vector<core::DegradationReport> reports;
    const auto result = detector->detectBatch(frames, options, &reports);
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_FALSE(reports[0].degraded()) << "temporal=" << temporal;
    ASSERT_GE(reports[1].levelsSkipped, 1) << "temporal=" << temporal;
    EXPECT_TRUE(result.frames[1].detections.empty());
    for (const core::LevelSkip& skip : reports[1].skips) {
      EXPECT_EQ(skip.status.code(), StatusCode::kDeadlineExceeded);
    }
  }
}

TEST(BatchOptions, TemporalCacheRebuildsAfterShedLevelReenabled) {
  // A level shed on the temporal path must not leave stale cached state
  // behind: frame 2 (nothing shed) must match a never-shed run bitwise.
  std::vector<Image> frames = {testFrame(320, 240, 5, 0),
                               testFrame(320, 240, 5, 1),
                               testFrame(320, 240, 5, 2)};
  auto shedThenFull = makeDetector(/*temporal=*/true, /*maxLevels=*/2);
  core::BatchOptions shedMiddle;
  shedMiddle.detect.skipFinestLevels = 1;
  shedThenFull->detectBatch({frames[0], frames[1]}, shedMiddle, nullptr);
  const auto afterShed = shedThenFull->detectBatch(
      {frames[2]}, core::BatchOptions{}, nullptr);

  auto alwaysFull = makeDetector(/*temporal=*/true, /*maxLevels=*/2);
  const auto reference = alwaysFull->detectBatch(frames);

  const auto& a = afterShed.frames[0].detections;
  const auto& b = reference.frames[2].detections;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].score, b[i].score) << "det " << i;
    EXPECT_EQ(a[i].box.x, b[i].box.x) << "det " << i;
    EXPECT_EQ(a[i].box.y, b[i].box.y) << "det " << i;
  }
}

// ------------------------------------------------------ admission

TEST(DetectionService, ExpiredRequestIsDroppedWithoutDetectorWork) {
  auto calls = std::make_shared<std::atomic<long>>(0);
  auto detector =
      makeDetector(/*temporal=*/false, /*maxLevels=*/1, calls);
  ServiceParams params = quietParams();
  DetectionService service(params, detector);
  // The deadline (1 nanosecond) has always already passed by the time the
  // worker wakes, takes the queue lock, and reads the clock.
  Response response = service.detectNow(testFrame(), /*deadlineMs=*/1e-6);
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.detections.empty());
  EXPECT_EQ(calls->load(), 0) << "expired request reached the detector";
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired, 1);
  EXPECT_EQ(stats.admitted, 1);
  EXPECT_EQ(stats.completed, 1);
}

TEST(DetectionService, FullQueueRejectsWithUnavailable) {
  auto gate = std::make_shared<Gate>();
  auto calls = std::make_shared<std::atomic<long>>(0);
  auto detector =
      makeDetector(/*temporal=*/false, /*maxLevels=*/1, calls, 0, gate);
  ServiceParams params = quietParams();
  params.queueCapacity = 2;
  params.maxBatch = 1;
  DetectionService service(params, detector);
  const Image frame = testFrame();

  auto first = service.submit(frame);
  ASSERT_TRUE(first.ok());
  // Wait for the worker to start scoring (and block on the gate), so the
  // first request occupies the worker, not a queue slot.
  ASSERT_TRUE(waitUntil([&] { return calls->load() > 0; }, 5000));

  auto second = service.submit(frame);
  auto third = service.submit(frame);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(third.ok());
  auto fourth = service.submit(frame);
  ASSERT_FALSE(fourth.ok());
  EXPECT_EQ(fourth.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(service.stats().rejected, 1);

  gate->release();
  EXPECT_TRUE(first.value().get().status.ok());
  EXPECT_TRUE(second.value().get().status.ok());
  EXPECT_TRUE(third.value().get().status.ok());
}

TEST(DetectionService, StopDrainsQueuedRequests) {
  auto detector = makeDetector(/*temporal=*/false, /*maxLevels=*/1);
  ServiceParams params = quietParams();
  params.maxBatch = 2;
  DetectionService service(params, detector);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 3; ++i) {
    auto admitted = service.submit(testFrame());
    ASSERT_TRUE(admitted.ok());
    futures.push_back(std::move(admitted.value()));
  }
  service.stop();
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  // Post-stop submissions are refused, typed.
  auto late = service.submit(testFrame());
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
}

// ------------------------------------------------- degradation ladder

TEST(DetectionService, LadderDegradesUnderOverloadAndRecovers) {
  // A slow scorer (50us per window) makes each frame cost ~5-15ms, so a
  // burst of instant submissions drives queue utilization past the
  // degrade threshold; once the flood stops, idle ticks recover the
  // ladder to full quality.
  auto detector = makeDetector(/*temporal=*/false, /*maxLevels=*/1, nullptr,
                               /*sleepUs=*/50);
  ServiceParams params = quietParams();
  params.queueCapacity = 4;
  params.maxBatch = 1;
  params.controller.recoverHoldTicks = 2;
  DetectionService service(params, detector);
  const Image frame = testFrame();

  std::vector<std::future<Response>> futures;
  bool sawDegradedLevel = false;
  const auto floodDeadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < floodDeadline) {
    auto admitted = service.submit(frame);
    if (admitted.ok()) futures.push_back(std::move(admitted.value()));
    if (service.stats().level > 0) {
      sawDegradedLevel = true;
      break;
    }
    // Yield to the worker: the single-core CI container needs the flood
    // loop to give batches a chance to complete (and tick the controller).
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_TRUE(sawDegradedLevel) << "overload never degraded the ladder";

  // Stop submitting: the queue drains and idle ticks walk the ladder back.
  EXPECT_TRUE(waitUntil(
      [&] {
        const serve::ServiceStats stats = service.stats();
        return stats.level == 0 && stats.queueDepth == 0;
      },
      10000))
      << "ladder never recovered after the flood";
  const serve::ServiceStats stats = service.stats();
  EXPECT_GE(stats.transitions, 2);  // at least one up and one down

  bool sawDegradedResponse = false;
  for (auto& future : futures) {
    Response response = future.get();
    ASSERT_TRUE(response.status.ok());
    if (response.servedAt != ServiceLevel::kFull) sawDegradedResponse = true;
  }
  EXPECT_TRUE(sawDegradedResponse);
  EXPECT_GE(service.stats().degraded, 1);
}

TEST(DetectionService, FallbackDetectorServesDeepRungs) {
  auto primaryCalls = std::make_shared<std::atomic<long>>(0);
  auto fallbackCalls = std::make_shared<std::atomic<long>>(0);
  auto primary = makeDetector(/*temporal=*/false, /*maxLevels=*/1,
                              primaryCalls, /*sleepUs=*/50);
  auto fallback =
      makeDetector(/*temporal=*/false, /*maxLevels=*/1, fallbackCalls);
  ServiceParams params = quietParams();
  params.queueCapacity = 4;
  params.maxBatch = 1;
  DetectionService service(params, primary, fallback);
  const Image frame = testFrame();

  std::vector<std::future<Response>> futures;
  const auto floodDeadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < floodDeadline) {
    auto admitted = service.submit(frame);
    if (admitted.ok()) futures.push_back(std::move(admitted.value()));
    if (service.stats().level >=
        static_cast<int>(ServiceLevel::kFallback)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ASSERT_GE(service.stats().level, static_cast<int>(ServiceLevel::kFallback))
      << "overload never reached the fallback rung";
  // Let the queued work drain at the fallback rung.
  EXPECT_TRUE(
      waitUntil([&] { return service.stats().queueDepth == 0; }, 10000));
  EXPECT_GT(fallbackCalls->load(), 0)
      << "fallback rung never used the fallback detector";
  bool sawFallbackResponse = false;
  for (auto& future : futures) {
    if (future.get().servedAt == ServiceLevel::kFallback) {
      sawFallbackResponse = true;
    }
  }
  EXPECT_TRUE(sawFallbackResponse);
}

// ------------------------------------------------- bitwise identity

TEST(DetectionService, UnloadedServiceMatchesDirectDetectBatchBitwise) {
  for (int threads : {1, 4}) {
    setThreadCount(threads);
    std::vector<Image> frames;
    for (int f = 0; f < 4; ++f) frames.push_back(testFrame(320, 240, 3, f));

    auto direct = makeDetector(/*temporal=*/true, /*maxLevels=*/2);
    const core::BatchDetectResult reference = direct->detectBatch(frames);

    auto served = makeDetector(/*temporal=*/true, /*maxLevels=*/2);
    ServiceParams params = quietParams();
    DetectionService service(params, served);
    for (std::size_t f = 0; f < frames.size(); ++f) {
      Response response = service.detectNow(frames[f]);
      ASSERT_TRUE(response.status.ok()) << "threads=" << threads;
      EXPECT_EQ(response.servedAt, ServiceLevel::kFull);
      EXPECT_FALSE(response.degradation.degraded());
      const auto& expect = reference.frames[f].detections;
      ASSERT_EQ(response.detections.size(), expect.size())
          << "threads=" << threads << " frame " << f;
      for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(response.detections[i].score, expect[i].score);
        EXPECT_EQ(response.detections[i].box.x, expect[i].box.x);
        EXPECT_EQ(response.detections[i].box.y, expect[i].box.y);
        EXPECT_EQ(response.detections[i].box.w, expect[i].box.w);
        EXPECT_EQ(response.detections[i].box.h, expect[i].box.h);
      }
    }
  }
  setThreadCount(1);
}

// ---------------------------------------------------- env + provenance

TEST(ServiceParams, EnvOverridesQueueAndDeadline) {
  ScopedEnv queueEnv("PCNN_SERVE_QUEUE", "3");
  ScopedEnv deadlineEnv("PCNN_SERVE_DEADLINE_MS", "250");
  auto detector = makeDetector(/*temporal=*/false, /*maxLevels=*/1);
  ServiceParams params;  // readEnv defaults to true
  DetectionService service(params, detector);
  EXPECT_EQ(service.params().queueCapacity, 3u);
  EXPECT_EQ(service.params().deadlineMs, 250.0);
}

TEST(Provenance, RecordsServeEnvVars) {
  ScopedEnv queueEnv("PCNN_SERVE_QUEUE", "17");
  ScopedEnv deadlineEnv("PCNN_SERVE_DEADLINE_MS", "33");
  const obs::Provenance p = obs::provenance();
  EXPECT_EQ(p.serveQueueEnv, "17");
  EXPECT_EQ(p.serveDeadlineEnv, "33");
  const std::string json = obs::provenanceJson(p);
  EXPECT_NE(json.find("\"serve_queue_env\": \"17\""), std::string::npos);
  EXPECT_NE(json.find("\"serve_deadline_ms_env\": \"33\""),
            std::string::npos);
}

}  // namespace
}  // namespace pcnn
