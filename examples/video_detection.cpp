// Video detection walkthrough: renders a short synthetic full-HD-style
// burst (vision::SyntheticVideo), trains nothing -- a fixed linear scorer
// stands in for the classifier -- and runs GridDetector::detectBatch with
// temporal reuse on, printing per-frame detections next to the ground
// truth and what the dirty-tile cache saved.
//
// Usage: video_detection [frames] [width] [height] [persons]
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "core/detector.hpp"
#include "extract/registry.hpp"
#include "vision/video.hpp"

using namespace pcnn;

int main(int argc, char** argv) {
  const int numFrames = argc > 1 ? std::atoi(argv[1]) : 12;
  const int width = argc > 2 ? std::atoi(argv[2]) : 640;
  const int height = argc > 3 ? std::atoi(argv[3]) : 480;
  const int persons = argc > 4 ? std::atoi(argv[4]) : 2;

  vision::VideoParams vp;
  vp.width = width;
  vp.height = height;
  vp.numPersons = persons;
  vp.seed = 5;
  vision::SyntheticVideo video(vp);

  auto extractor =
      extract::makeExtractor("hog", extract::FeatureLayout::kBlockNorm);
  // A fixed random linear scorer: high threshold keeps the report small
  // while still exercising the full scan (swap in a trained LinearSvm via
  // svm::trainWithHardNegatives for real detections).
  std::vector<float> weights(
      static_cast<std::size_t>(extractor->featureDim()));
  Rng wrng(7);
  for (auto& w : weights) w = static_cast<float>(wrng.uniform()) - 0.5f;
  core::GridDetectorParams params;
  params.scoreThreshold = 2.5f;
  core::GridDetector detector(
      params, extractor, [&weights](const std::vector<float>& f) {
        float acc = 0.0f;
        for (std::size_t i = 0; i < f.size() && i < weights.size(); ++i) {
          acc += weights[i] * f[i];
        }
        return acc;
      });

  std::printf("synthetic video %dx%d, %d frames, %d persons\n", width,
              height, numFrames, persons);
  const core::BatchDetectResult batch = detector.detectBatch(
      numFrames, [&video](int f) { return video.frame(f).image; });
  std::printf("temporal reuse: %s\n",
              batch.temporalEnabled ? "on" : "off (PCNN_TEMPORAL)");

  for (std::size_t f = 0; f < batch.frames.size(); ++f) {
    const core::FrameResult& frame = batch.frames[f];
    const vision::Scene scene = video.frame(static_cast<int>(f));
    const long tiles = frame.stats.tilesReused + frame.stats.tilesRecomputed;
    std::printf(
        "frame %2zu: %2zu detections, %zu persons visible, "
        "tiles %ld/%ld reused, windows %ld rescored%s\n",
        f, frame.detections.size(), scene.groundTruth.size(),
        frame.stats.tilesReused, tiles, frame.stats.windowsRescored,
        frame.stats.fullRecompute ? " (full recompute)" : "");
    for (const vision::Detection& det : frame.detections) {
      std::printf("    box (%6.1f, %6.1f) %5.1fx%5.1f  score %.2f\n",
                  det.box.x, det.box.y, det.box.w, det.box.h, det.score);
    }
  }
  return 0;
}
