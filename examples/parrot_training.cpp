// Parrot co-training demo (the paper's Section 3.2): train a 2-layer Eedn
// network to mimic NApprox HoG histograms from randomly generated oriented
// samples, sweep the stochastic input coding from exact down to 1-spike,
// and deploy the trained parrot onto the TrueNorth simulator through the
// Eedn mapper.
//
// Usage: parrot_training [trainSamples] [epochs]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "eedn/mapper.hpp"
#include "eval/stats.hpp"
#include "parrot/generator.hpp"
#include "parrot/parrot.hpp"

int main(int argc, char** argv) {
  using namespace pcnn;
  const int trainSamples = argc > 1 ? std::atoi(argv[1]) : 4000;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 15;

  parrot::OrientedSampleGenerator generator;
  parrot::ParrotConfig config;
  config.seed = 2017;
  parrot::ParrotHog parrot(config);

  std::printf("training parrot on %d auto-labelled samples, %d epochs...\n",
              trainSamples, epochs);
  const float loss = parrot.train(generator, trainSamples, epochs, 0.005f);
  std::printf("final training MSE: %.4f\n", loss);
  std::printf("validation MSE:     %.4f\n", parrot.validate(generator, 400));
  std::printf("dominant-bin accuracy (exact inputs): %.3f\n",
              parrot.dominantBinAccuracy(generator, 400));

  // Precision sweep (the Figure 6 axis).
  std::printf("\nstochastic input coding sweep:\n");
  std::printf("  %8s  %12s  %10s\n", "spikes", "accuracy", "val MSE");
  for (int spikes : {32, 16, 8, 4, 2, 1}) {
    parrot.setInputSpikes(spikes);
    std::printf("  %8d  %12.3f  %10.4f\n", spikes,
                parrot.dominantBinAccuracy(generator, 300),
                parrot.validate(generator, 300));
  }
  parrot.setInputSpikes(0);

  // Deployment onto the neurosynaptic simulator.
  auto mapped = eedn::TnMapper::map(parrot.net());
  std::printf("\nmapped parrot onto %d TrueNorth core(s), depth %d\n",
              mapped->coreCount(), mapped->depth());
  Rng rng(5);
  int agree = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> input(100);
    for (auto& v : input) v = rng.bernoulli(0.5) ? 1 : 0;
    if (mapped->forwardSpikes(input) == mapped->referenceForward(input)) {
      ++agree;
    }
  }
  std::printf("simulator vs reference agreement: %d/%d binary probes\n",
              agree, trials);
  return 0;
}
