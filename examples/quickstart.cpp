// Quickstart: extract HoG features from a synthetic pedestrian window with
// all three explicit extractors (classic float HoG, the FPGA fixed-point
// baseline, and the TrueNorth NApprox approximation), run the NApprox
// corelet on the neurosynaptic simulator, and compare the results.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "common/rng.hpp"
#include "eval/stats.hpp"
#include "hog/fixed_point.hpp"
#include "hog/hog.hpp"
#include "napprox/corelet.hpp"
#include "napprox/napprox.hpp"
#include "napprox/quantized.hpp"
#include "vision/synth.hpp"

int main() {
  using namespace pcnn;

  // 1. A synthetic 64x128 pedestrian window (the INRIA substitute).
  vision::SyntheticPersonDataset dataset;
  Rng rng(2026);
  const vision::Image window = dataset.positiveWindow(rng);
  std::printf("synthetic window: %dx%d, mean intensity %.3f\n",
              window.width(), window.height(), vision::meanValue(window));

  // 2. Classic Dalal-Triggs HoG (9 unsigned bins, block-normalized).
  const hog::HogExtractor classic;
  const auto classicDesc = classic.windowDescriptor(window);
  std::printf("classic HoG descriptor: %zu features (expected 3780)\n",
              classicDesc.size());

  // 3. FPGA-style fixed-point HoG (the paper's baseline [1]).
  const hog::FixedPointHog fpga;
  const auto fpgaDesc = fpga.windowDescriptor(window);
  std::printf("fixed-point HoG descriptor: %zu features, correlation vs "
              "float: %.4f\n",
              fpgaDesc.size(),
              eval::pearsonCorrelation(fpgaDesc, classicDesc));

  // 4. NApprox HoG: 18 signed bins, count voting (paper Table 1).
  const napprox::NApproxHog napproxFp;
  const auto napproxDesc = napproxFp.windowDescriptor(window);
  std::printf("NApprox(fp) descriptor: %zu features (expected 7560)\n",
              napproxDesc.size());

  // 5. The TrueNorth-compatible quantized model and the real corelet
  //    running on the neurosynaptic core simulator.
  const napprox::QuantizedNApproxHog quantized(
      {}, {}, napprox::QuantizedMode::kTickAccurate);
  napprox::NApproxCorelet corelet(quantized);
  std::printf("NApprox corelet: %d TrueNorth cores, %d ticks per cell\n",
              corelet.coreCount(), corelet.ticksPerCell());

  const auto histSoftware = quantized.cellHistogram(window, 24, 48);
  const auto histHardware = corelet.extract(window, 24, 48);
  std::printf("cell (24,48) histogram, software vs corelet:\n  bin:");
  for (int k = 0; k < 18; ++k) std::printf(" %4d", k);
  std::printf("\n  sw: ");
  for (float v : histSoftware) std::printf(" %4.0f", v);
  std::printf("\n  hw: ");
  for (float v : histHardware) std::printf(" %4.0f", v);
  std::printf("\n  correlation: %.4f\n",
              eval::pearsonCorrelation(histSoftware, histHardware));
  return 0;
}
