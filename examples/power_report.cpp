// Prints the paper's Table 2 power comparison for full-HD pedestrian
// detection at 26 fps, plus the NApprox-vs-Parrot power ratio quoted in
// the abstract (6.5x-208x).
//
// Below the analytic table, the report runs each TrueNorth extractor's
// actual corelet in the tick-accurate simulator on a handful of sample
// cells and prints the *measured* spike activity (tn::RunResult feeds the
// event-driven tn::estimateEnergy model). The measured deployment power
// sits next to the analytic row and deviations above 10% are flagged --
// they arise where our mapped module's core count differs from the paper
// module the analytic model provisions.
//
// Run with PCNN_METRICS=<path> to also capture the tn.spikes / tn.ticks
// counters the simulator feeds into the metrics snapshot.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "eedn/mapper.hpp"
#include "extract/registry.hpp"
#include "napprox/corelet.hpp"
#include "napprox/quantized.hpp"
#include "obs/obs.hpp"
#include "parrot/parrot.hpp"
#include "power/power.hpp"
#include "tn/energy.hpp"
#include "vision/synth.hpp"

namespace {

using namespace pcnn;

/// Measured activity of one mapped module over several simulated cells.
struct MeasuredRow {
  std::string approach;
  int cores = 0;
  long runs = 0;
  tn::RunResult total;
  tn::EnergyReport energy;
  double modules = 0.0;        ///< from the matching analytic row
  double analyticWatts = 0.0;  ///< from the matching analytic row
  int paperCores = 0;
};

/// The sample cell positions measured in a 64x128 training window.
const std::pair<int, int> kSampleCells[] = {
    {8, 16}, {16, 40}, {24, 64}, {32, 88}, {40, 104}, {48, 24}};

void printMeasuredRow(const MeasuredRow& row) {
  const double cells = static_cast<double>(row.runs);
  const double spikesPerCell = row.total.totalSpikes / cells;
  const double ticksPerCell = row.total.ticksRun / cells;
  // Deployment power if every analytic module shows this measured
  // activity: modules x (measured average module power).
  const double deployedWatts = row.energy.watts * row.modules;
  const double deviation =
      row.analyticWatts > 0.0
          ? (deployedWatts - row.analyticWatts) / row.analyticWatts
          : 0.0;
  std::printf("%-26s %6d %11.1f %12.1f %11.3f %10.2f %10.2f %+7.1f%%\n",
              row.approach.c_str(), row.cores, ticksPerCell, spikesPerCell,
              row.energy.watts * 1e3, deployedWatts, row.analyticWatts,
              deviation * 100.0);
  if (std::fabs(deviation) > 0.10) {
    std::printf("  ^ deviates >10%% from the analytic row: the mapped "
                "module uses %d cores where the paper's uses %d\n",
                row.cores, row.paperCores);
  }
}

/// First analytic row whose approach contains `needle` (e.g. "NApprox").
const power::PowerEstimate* findRow(
    const std::vector<power::PowerEstimate>& rows,
    const std::string& needle) {
  for (const power::PowerEstimate& row : rows) {
    if (row.approach.find(needle) != std::string::npos) return &row;
  }
  return nullptr;
}

}  // namespace

int main() {
  using namespace pcnn::power;
  const FullHdWorkload workload;
  std::printf("full-HD workload: %ld cells/frame @ %d fps = %.3g cells/s\n\n",
              workload.cellsPerFrame(), workload.fps,
              workload.cellsPerSecond());

  // Each row is derived from a registry-constructed extractor's own
  // deployment metadata (see extract::table2Specs).
  const std::vector<PowerEstimate> rows =
      pcnn::extract::table2FromRegistry(workload);
  std::printf("%-32s %-18s %12s %10s %10s\n", "Approach", "Signal resolution",
              "modules", "chips", "power");
  for (const PowerEstimate& row : rows) {
    char power[32];
    if (row.watts >= 1.0) {
      std::snprintf(power, sizeof(power), "%.2f W", row.watts);
    } else {
      std::snprintf(power, sizeof(power), "%.0f mW", row.watts * 1e3);
    }
    if (row.modules > 0) {
      std::printf("%-32s %-18s %12.0f %10.1f %10s\n", row.approach.c_str(),
                  row.signalResolution.c_str(), row.modules, row.chips,
                  power);
    } else {
      std::printf("%-32s %-18s %12s %10s %10s\n", row.approach.c_str(),
                  row.signalResolution.c_str(), "-", "-", power);
    }
  }

  const auto [low, high] = napproxOverParrotRatio(workload);
  std::printf("\nParrot vs NApprox power advantage: %.1fx (32-spike) to "
              "%.0fx (1-spike)\n", low, high);
  std::printf("paper quotes 6.5x-208x\n");

  // --- Measured spike activity ---------------------------------------------
  // Run the actual mapped corelets in the tick-accurate simulator and
  // derive a measured power estimate from their spike traffic, next to
  // the provisioned-core analytic model above.
  vision::SyntheticPersonDataset dataset;
  Rng rng(21);
  const vision::Image sample = dataset.positiveWindow(rng);

  std::printf("\nmeasured spike activity (tick-accurate simulator, %zu "
              "sample cells each):\n",
              std::size(kSampleCells));
  std::printf("%-26s %6s %11s %12s %11s %10s %10s %8s\n", "Approach", "cores",
              "ticks/cell", "spikes/cell", "module mW", "deployed W",
              "analytic W", "dev");

  {
    const napprox::QuantizedNApproxHog model(
        {}, {}, napprox::QuantizedMode::kTickAccurate);
    napprox::NApproxCorelet corelet(model);
    MeasuredRow measured;
    measured.approach = "NApprox HoG (measured)";
    measured.cores = corelet.coreCount();
    for (const auto& [x0, y0] : kSampleCells) {
      (void)corelet.extract(sample, x0, y0);
      measured.total.accumulate(corelet.lastRun());
      ++measured.runs;
    }
    measured.energy = tn::estimateEnergy(corelet.network(), measured.total);
    if (const PowerEstimate* row = findRow(rows, "NApprox")) {
      measured.modules = row->modules;
      measured.analyticWatts = row->watts;
    }
    measured.paperCores = 26;
    printMeasuredRow(measured);
  }

  {
    // The parrot's spike statistics come from its Eedn network mapped onto
    // the simulator (TnMapper). The untrained trinary net carries the same
    // structure and per-tick traffic scale as a trained one, which is what
    // the activity-power estimate depends on.
    parrot::ParrotHog parrotModel;
    const auto mapped = eedn::TnMapper::map(parrotModel.net());
    MeasuredRow measured;
    measured.approach = "Parrot HoG (measured)";
    measured.cores = mapped->coreCount();
    std::vector<int> input(static_cast<std::size_t>(mapped->inputSize()), 0);
    for (const auto& [x0, y0] : kSampleCells) {
      for (int y = 0; y < 10; ++y) {
        for (int x = 0; x < 10; ++x) {
          const std::size_t i = static_cast<std::size_t>(y) * 10 + x;
          if (i < input.size()) {
            input[i] = sample.atClamped(x0 - 1 + x, y0 - 1 + y) > 0.5f;
          }
        }
      }
      (void)mapped->forwardSpikes(input);
      measured.total.accumulate(mapped->lastRun());
      ++measured.runs;
    }
    measured.energy = tn::estimateEnergy(mapped->network(), measured.total);
    if (const PowerEstimate* row = findRow(rows, "Parrot")) {
      measured.modules = row->modules;  // 32-spike row (first Parrot row)
      measured.analyticWatts = row->watts;
    }
    measured.paperCores = 8;
    printMeasuredRow(measured);
  }

  // The simulator also feeds the global tn.* metrics counters; surface
  // them (and the PCNN_METRICS snapshot, when requested) so the measured
  // numbers above can be cross-checked against the telemetry layer.
  if (pcnn::obs::metricsEnabled()) {
    std::printf("\ntn counters: spikes=%ld ticks=%ld runs=%ld\n",
                pcnn::obs::counter("tn.spikes").value(),
                pcnn::obs::counter("tn.ticks").value(),
                pcnn::obs::counter("tn.runs").value());
  }
  if (!pcnn::obs::configuredMetricsPath().empty() ||
      !pcnn::obs::configuredTracePath().empty()) {
    pcnn::obs::writeConfiguredReports();
  }
  return 0;
}
