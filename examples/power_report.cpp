// Prints the paper's Table 2 power comparison for full-HD pedestrian
// detection at 26 fps, plus the NApprox-vs-Parrot power ratio quoted in
// the abstract (6.5x-208x).
#include <cstdio>

#include "extract/registry.hpp"
#include "power/power.hpp"

int main() {
  using namespace pcnn::power;
  const FullHdWorkload workload;
  std::printf("full-HD workload: %ld cells/frame @ %d fps = %.3g cells/s\n\n",
              workload.cellsPerFrame(), workload.fps,
              workload.cellsPerSecond());

  // Each row is derived from a registry-constructed extractor's own
  // deployment metadata (see extract::table2Specs).
  std::printf("%-32s %-18s %12s %10s %10s\n", "Approach", "Signal resolution",
              "modules", "chips", "power");
  for (const PowerEstimate& row : pcnn::extract::table2FromRegistry(workload)) {
    char power[32];
    if (row.watts >= 1.0) {
      std::snprintf(power, sizeof(power), "%.2f W", row.watts);
    } else {
      std::snprintf(power, sizeof(power), "%.0f mW", row.watts * 1e3);
    }
    if (row.modules > 0) {
      std::printf("%-32s %-18s %12.0f %10.1f %10s\n", row.approach.c_str(),
                  row.signalResolution.c_str(), row.modules, row.chips,
                  power);
    } else {
      std::printf("%-32s %-18s %12s %10s %10s\n", row.approach.c_str(),
                  row.signalResolution.c_str(), "-", "-", power);
    }
  }

  const auto [low, high] = napproxOverParrotRatio(workload);
  std::printf("\nParrot vs NApprox power advantage: %.1fx (32-spike) to "
              "%.0fx (1-spike)\n", low, high);
  std::printf("paper quotes 6.5x-208x\n");
  return 0;
}
