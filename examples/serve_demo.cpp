// Detection-as-a-service demo: stands up a serve::DetectionService over a
// synthetic video, serves a few frames at full quality, then floods the
// admission queue to show the degradation ladder stepping down (coarser
// pyramid -> typed rejection) and recovering once the burst passes.
//
// Usage: serve_demo [frames]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/detector.hpp"
#include "extract/registry.hpp"
#include "serve/service.hpp"
#include "vision/video.hpp"

using namespace pcnn;

namespace {

std::shared_ptr<core::GridDetector> makeDetector() {
  auto extractor =
      extract::makeExtractor("hog", extract::FeatureLayout::kBlockNorm);
  core::GridDetectorParams params;
  params.scoreThreshold = 2.0f;
  params.pyramid.maxLevels = 2;
  std::vector<float> weights(static_cast<std::size_t>(extractor->featureDim()));
  Rng wrng(7);
  for (auto& w : weights) w = static_cast<float>(wrng.uniform()) - 0.5f;
  auto scorer = [weights = std::move(weights)](const std::vector<float>& f) {
    float acc = 0.0f;
    const std::size_t n = f.size() < weights.size() ? f.size() : weights.size();
    for (std::size_t i = 0; i < n; ++i) acc += weights[i] * f[i];
    return acc;
  };
  return std::make_shared<core::GridDetector>(params, extractor, scorer);
}

void printResponse(int frameIndex, const serve::Response& response) {
  std::printf("frame %2d: %s, %zu detections, served at %s%s\n", frameIndex,
              response.status.ok() ? "OK" : response.status.toString().c_str(),
              response.detections.size(),
              serve::serviceLevelName(response.servedAt),
              response.degradation.degraded()
                  ? (" (" + response.degradation.summary() + ")").c_str()
                  : "");
}

}  // namespace

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 6;

  vision::VideoParams vp;
  vp.width = 320;
  vp.height = 240;
  vp.numPersons = 1;
  vp.seed = 11;
  vision::SyntheticVideo video(vp);

  serve::ServiceParams params;  // PCNN_SERVE_QUEUE / _DEADLINE_MS apply
  params.queueCapacity = 4;
  params.maxBatch = 2;
  serve::DetectionService service(params, makeDetector());

  std::printf("== steady state (one frame at a time) ==\n");
  for (int f = 0; f < frames; ++f) {
    printResponse(f, service.detectNow(video.frame(f).image));
  }

  std::printf("\n== burst (flooding the admission queue) ==\n");
  std::vector<std::future<serve::Response>> futures;
  int rejected = 0;
  for (int f = 0; f < 4 * frames; ++f) {
    auto admitted = service.submit(video.frame(f % frames).image,
                                   /*deadlineMs=*/500.0);
    if (admitted.ok()) {
      futures.push_back(std::move(admitted.value()));
    } else {
      ++rejected;
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    printResponse(static_cast<int>(i), futures[i].get());
  }
  std::printf("rejected at admission: %d of %d\n", rejected, 4 * frames);

  const serve::ServiceStats stats = service.stats();
  std::printf(
      "\nservice stats: admitted=%ld rejected=%ld expired=%ld degraded=%ld "
      "completed=%ld transitions=%ld level=%d\n",
      stats.admitted, stats.rejected, stats.expired, stats.degraded,
      stats.completed, stats.transitions, stats.level);
  return 0;
}
