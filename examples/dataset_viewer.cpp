// Renders samples of the synthetic pedestrian dataset (the INRIA
// substitute) to image files for visual inspection: positive and negative
// training windows, a full scene with ground-truth boxes drawn, HoG glyph
// visualizations of a positive window under the classic and NApprox
// extractors, and a sheet of parrot training patches (paper Figure 3).
//
// Usage: dataset_viewer [outDir=/tmp] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.hpp"
#include "hog/hog.hpp"
#include "hog/visualize.hpp"
#include "napprox/napprox.hpp"
#include "parrot/generator.hpp"
#include "vision/draw.hpp"
#include "vision/pgm.hpp"
#include "vision/synth.hpp"

int main(int argc, char** argv) {
  using namespace pcnn;
  const std::string outDir = argc > 1 ? argv[1] : "/tmp";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  vision::SyntheticPersonDataset dataset;
  Rng rng(seed);

  // Contact sheet of training windows: top row positives, bottom negatives.
  {
    const int cols = 8;
    vision::Image sheet(cols * 66, 2 * 130, 1.0f);
    for (int i = 0; i < cols; ++i) {
      const vision::Image pos = dataset.positiveWindow(rng);
      const vision::Image neg = dataset.negativeWindow(rng);
      for (int y = 0; y < 128; ++y) {
        for (int x = 0; x < 64; ++x) {
          sheet.at(i * 66 + x + 1, y + 1) = pos.at(x, y);
          sheet.at(i * 66 + x + 1, 130 + y + 1) = neg.at(x, y);
        }
      }
    }
    const std::string path = outDir + "/pcnn_windows.pgm";
    vision::writePgm(sheet, path);
    std::printf("training windows -> %s\n", path.c_str());
  }

  // Scene with ground truth boxes.
  {
    const vision::Scene scene = dataset.scene(rng, 480, 360, 3, 96, 240);
    vision::RgbImage rgb(scene.image);
    for (const vision::Rect& gt : scene.groundTruth) {
      vision::drawRect(rgb, gt, vision::Color{0.1f, 1.0f, 0.1f});
    }
    const std::string path = outDir + "/pcnn_scene_gt.ppm";
    vision::writePpm(rgb, path);
    std::printf("scene with %zu ground-truth boxes -> %s\n",
                scene.groundTruth.size(), path.c_str());
  }

  // HoG glyphs of one positive window: classic 9-bin vs NApprox 18-bin.
  {
    const vision::Image window = dataset.positiveWindow(rng);
    vision::writePgm(window, outDir + "/pcnn_window.pgm");

    const hog::HogExtractor classic;
    vision::writePpm(
        hog::renderHogGlyphs(classic.computeCells(window), false),
        outDir + "/pcnn_hog_classic.ppm");

    const napprox::NApproxHog napproxHog;
    vision::writePpm(
        hog::renderHogGlyphs(napproxHog.computeCells(window), true),
        outDir + "/pcnn_hog_napprox.ppm");
    std::printf("HoG glyphs -> %s/pcnn_hog_{classic,napprox}.ppm\n",
                outDir.c_str());
  }

  // Parrot training patches (paper Figure 3): binary oriented samples.
  {
    parrot::GeneratorParams params;
    params.grayLevels = false;
    params.textureProbability = 0.0f;
    const parrot::OrientedSampleGenerator generator(params);
    const int cols = 16;
    vision::Image sheet(cols * 12, 3 * 12, 1.0f);
    for (int row = 0; row < 3; ++row) {
      for (int col = 0; col < cols; ++col) {
        const vision::Image patch = generator.patch(rng);
        for (int y = 0; y < 10; ++y) {
          for (int x = 0; x < 10; ++x) {
            sheet.at(col * 12 + x + 1, row * 12 + y + 1) = patch.at(x, y);
          }
        }
      }
    }
    const std::string path = outDir + "/pcnn_parrot_samples.pgm";
    vision::writePgm(sheet, path);
    std::printf("parrot training patches (Fig. 3 style) -> %s\n",
                path.c_str());
  }
  return 0;
}
