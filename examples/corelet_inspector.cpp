// Inspects the NApprox HoG corelet: prints its core/synapse inventory,
// runs it on one cell, and reports spike activity plus an event-driven
// energy estimate -- contrasting measured activity energy against the
// provisioned-core power the paper's Table 2 budgets with.
#include <cstdio>

#include "common/rng.hpp"
#include "napprox/corelet.hpp"
#include "napprox/quantized.hpp"
#include "tn/energy.hpp"
#include "vision/synth.hpp"

int main() {
  using namespace pcnn;
  const napprox::QuantizedNApproxHog model(
      {}, {}, napprox::QuantizedMode::kTickAccurate);
  napprox::NApproxCorelet corelet(model);

  std::printf("NApprox HoG corelet (one 8x8 cell)\n");
  std::printf("  cores:           %d (paper's module: 26)\n",
              corelet.coreCount());
  std::printf("  ticks per cell:  %d (64-spike input window + ramp race)\n",
              corelet.ticksPerCell());
  long synapses = 0;
  for (int c = 0; c < corelet.network().coreCount(); ++c) {
    synapses += corelet.network().core(c).synapseCount();
  }
  std::printf("  synapses:        %ld\n", synapses);
  std::printf("  vote threshold:  %d, ramp threshold: %d, cutoff tick: %d\n",
              model.effectiveThreshold(), model.rampThreshold(),
              model.cutoffBucket());

  vision::SyntheticPersonDataset dataset;
  Rng rng(3);
  const vision::Image window = dataset.positiveWindow(rng);
  const auto histogram = corelet.extract(window, 24, 48);
  std::printf("\nhistogram of cell (24,48):\n  ");
  for (float v : histogram) std::printf("%3.0f", v);
  std::printf("\n");

  const tn::EnergyReport energy =
      tn::estimateEnergy(corelet.network(), corelet.lastRun());
  std::printf("\nactivity and energy for one cell extraction:\n");
  std::printf("  spikes fired:     %ld\n", energy.spikes);
  std::printf("  synaptic events:  %ld (upper estimate)\n",
              energy.synapticEvents);
  std::printf("  static energy:    %.3g J\n", energy.staticJoules);
  std::printf("  dynamic energy:   %.3g J\n", energy.dynamicJoules);
  std::printf("  average power:    %.3g W over %.3g s\n", energy.watts,
              energy.seconds);
  std::printf("\nThe static (provisioned-core) term dominates, which is why "
              "Table 2 budgets power by core count alone.\n");
  return 0;
}
