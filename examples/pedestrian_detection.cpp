// End-to-end pedestrian detection on synthetic scenes: pick a feature
// backend from the extractor registry, train an SVM on its flat cell
// features with hard-negative mining, scan a multi-scale pyramid with the
// grid detector, apply NMS (epsilon = 0.2), and report detections against
// ground truth -- the full Figure-4-style pipeline on a couple of scenes,
// for every registered backend by default.
//
// Usage: pedestrian_detection [numScenes] [seed] [extractor]
//   extractor: a registry spec ("hog", "napprox", "parrot:4spike", ...);
//              omit to run every registered backend.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/detector.hpp"
#include "eval/detection_eval.hpp"
#include "extract/registry.hpp"
#include "obs/obs.hpp"
#include "svm/linear_svm.hpp"
#include "svm/mining.hpp"
#include "vision/pgm.hpp"
#include "vision/synth.hpp"

namespace {

void runExtractor(const std::string& spec, int numScenes,
                  std::uint64_t seed) {
  using namespace pcnn;
  std::printf("\n=== extractor: %s ===\n", spec.c_str());
  vision::SyntheticPersonDataset dataset;
  Rng rng(seed);

  // 1. Training windows.
  std::printf("generating training data...\n");
  std::vector<vision::Image> positives, negatives, negativeScenes;
  for (int i = 0; i < 150; ++i) {
    positives.push_back(dataset.positiveWindow(rng));
    negatives.push_back(dataset.negativeWindow(rng));
  }
  for (int i = 0; i < 2; ++i) {
    negativeScenes.push_back(dataset.scene(rng, 256, 256, 0).image);
  }

  // 2. Stage A: pretrain the extractor where it is trainable (the parrot
  // learns to mimic its NApprox teacher; fixed-function backends no-op).
  const auto extractor =
      extract::makeExtractor(spec, extract::FeatureLayout::kFlatCell);
  extractor->pretrain(4000, 16, 0.005f);

  // 3. SVM on flat cell features, with hard-negative mining. The extractor
  // is shared with the detector: mining scans each negative scene over one
  // cached cell grid per pyramid level instead of re-extracting every
  // window from scratch.
  svm::LinearSvm model;
  svm::MiningParams mining;
  mining.scan.strideX = 16;
  mining.scan.strideY = 16;
  mining.scan.pyramid.maxLevels = 3;
  const auto miningResult = svm::trainWithHardNegatives(
      model, *extractor, positives, negatives, negativeScenes, mining);
  std::printf("trained SVM: %d hard negatives mined, train accuracy %.3f\n",
              miningResult.minedNegatives, miningResult.finalTrainAccuracy);

  // 4. Multi-scale detection on fresh scenes (window rows scanned on the
  // thread pool; set PCNN_NUM_THREADS to control it).
  core::GridDetectorParams params;
  params.scoreThreshold = 0.25f;
  core::GridDetector detector(params, extractor,
                              [&model](const std::vector<float>& f) {
                                return static_cast<float>(model.decision(f));
                              });

  std::vector<eval::ImageResult> results;
  for (int s = 0; s < numScenes; ++s) {
    const vision::Scene scene = dataset.scene(rng, 320, 256, 2, 96, 180);
    const auto detections = detector.detect(scene.image);
    std::printf("scene %d: %zu ground truth, %zu detections after NMS\n", s,
                scene.groundTruth.size(), detections.size());
    for (const auto& det : detections) {
      std::printf("  box (%.0f,%.0f %.0fx%.0f) score %.2f\n", det.box.x,
                  det.box.y, det.box.w, det.box.h, det.score);
    }
    if (s == 0) {
      vision::writePgm(scene.image, "/tmp/pcnn_scene0.pgm");
      std::printf("  (scene image written to /tmp/pcnn_scene0.pgm)\n");
    }
    eval::ImageResult r;
    r.detections = detections;
    r.groundTruth = scene.groundTruth;
    results.push_back(std::move(r));
  }

  // 5. Evaluation summary.
  const eval::Counts counts = eval::evaluateAtThreshold(results, 0.0f);
  std::printf("\noverall: TP=%d FP=%d misses=%d\n", counts.truePositives,
              counts.falsePositives, counts.misses);
  const auto curve = eval::missRateCurve(results);
  std::printf("log-average miss rate: %.3f\n",
              eval::logAverageMissRate(curve));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pcnn;
  const int numScenes = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  if (argc > 3) {
    runExtractor(argv[3], numScenes, seed);
    return 0;
  }
  for (const std::string& name : extract::ExtractorRegistry::instance().names()) {
    runExtractor(name, numScenes, seed);
  }

  // With PCNN_TRACE / PCNN_METRICS set, the whole run's spans and counters
  // are exported here (and again at exit, harmlessly overwriting).
  if (!obs::configuredTracePath().empty() ||
      !obs::configuredMetricsPath().empty()) {
    obs::writeConfiguredReports();
    std::printf("\nobs: trace=%s metrics=%s\n",
                obs::configuredTracePath().empty()
                    ? "(off)"
                    : obs::configuredTracePath().c_str(),
                obs::configuredMetricsPath().empty()
                    ? "(off)"
                    : obs::configuredMetricsPath().c_str());
  }
  return 0;
}
