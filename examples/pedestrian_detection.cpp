// End-to-end pedestrian detection on synthetic scenes: pick a feature
// backend from the extractor registry, train an SVM on its flat cell
// features with hard-negative mining, scan a multi-scale pyramid with the
// grid detector, apply NMS (epsilon = 0.2), and report detections against
// ground truth -- the full Figure-4-style pipeline on a couple of scenes,
// for every registered backend by default.
//
// Usage: pedestrian_detection [numScenes] [seed] [extractor]
//   extractor: a registry spec ("hog", "napprox", "parrot:4spike", ...);
//              omit to run every registered backend.
//
// With PCNN_BUNDLE=<path.pcnb> set, the extractor and SVM are loaded from
// a model bundle (see bundle_tool) instead of being trained in-process:
// no stage-A pretraining, no SVM mining -- straight to detection.
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "core/detector.hpp"
#include "eval/detection_eval.hpp"
#include "extract/registry.hpp"
#include "io/bundle.hpp"
#include "obs/obs.hpp"
#include "svm/linear_svm.hpp"
#include "svm/mining.hpp"
#include "svm/serialize.hpp"
#include "vision/pgm.hpp"
#include "vision/synth.hpp"

namespace {

/// Steps 4-5 of the pipeline, shared by the trained-in-process and the
/// bundle-loaded paths: multi-scale detection on fresh scenes plus the
/// evaluation summary.
void detectAndReport(
    const std::shared_ptr<pcnn::extract::FeatureExtractor>& extractor,
    const pcnn::svm::LinearSvm& model, int numScenes, pcnn::Rng& rng) {
  using namespace pcnn;
  vision::SyntheticPersonDataset dataset;
  core::GridDetectorParams params;
  params.scoreThreshold = 0.25f;
  core::GridDetector detector(params, extractor,
                              [&model](const std::vector<float>& f) {
                                return static_cast<float>(model.decision(f));
                              });

  std::vector<eval::ImageResult> results;
  for (int s = 0; s < numScenes; ++s) {
    const vision::Scene scene = dataset.scene(rng, 320, 256, 2, 96, 180);
    const auto detections = detector.detect(scene.image);
    std::printf("scene %d: %zu ground truth, %zu detections after NMS\n", s,
                scene.groundTruth.size(), detections.size());
    for (const auto& det : detections) {
      std::printf("  box (%.0f,%.0f %.0fx%.0f) score %.2f\n", det.box.x,
                  det.box.y, det.box.w, det.box.h, det.score);
    }
    if (s == 0) {
      vision::writePgm(scene.image, "/tmp/pcnn_scene0.pgm");
      std::printf("  (scene image written to /tmp/pcnn_scene0.pgm)\n");
    }
    eval::ImageResult r;
    r.detections = detections;
    r.groundTruth = scene.groundTruth;
    results.push_back(std::move(r));
  }

  const eval::Counts counts = eval::evaluateAtThreshold(results, 0.0f);
  std::printf("\noverall: TP=%d FP=%d misses=%d\n", counts.truePositives,
              counts.falsePositives, counts.misses);
  const auto curve = eval::missRateCurve(results);
  std::printf("log-average miss rate: %.3f\n",
              eval::logAverageMissRate(curve));
}

/// Detection with the extractor and SVM loaded from a model bundle:
/// the deployment path -- no training of any kind in this process.
int runBundle(const std::string& path, int numScenes, std::uint64_t seed) {
  using namespace pcnn;
  std::printf("\n=== bundle: %s ===\n", path.c_str());
  StatusOr<io::Bundle> bundle = io::Bundle::tryLoadFile(path);
  if (!bundle.ok()) {
    std::fprintf(stderr, "PCNN_BUNDLE: %s\n",
                 bundle.status().toString().c_str());
    return 1;
  }
  StatusOr<std::shared_ptr<extract::FeatureExtractor>> extractor =
      extract::ExtractorRegistry::instance().tryLoadExtractor(
          bundle.value());
  if (!extractor.ok()) {
    std::fprintf(stderr, "PCNN_BUNDLE: %s\n",
                 extractor.status().toString().c_str());
    return 1;
  }
  const std::string* svmBytes =
      bundle.value().chunk(io::chunks::kSvmModel);
  if (svmBytes == nullptr) {
    std::fprintf(stderr, "PCNN_BUNDLE: bundle has no %s chunk\n",
                 io::chunks::kSvmModel);
    return 1;
  }
  std::istringstream svmIn(*svmBytes);
  StatusOr<svm::LinearSvm> model = svm::tryLoadModel(svmIn);
  if (!model.ok()) {
    std::fprintf(stderr, "PCNN_BUNDLE: %s\n",
                 model.status().toString().c_str());
    return 1;
  }
  std::printf("loaded extractor %s, %zu-d SVM (content hash %s)\n",
              extractor.value()->name().c_str(),
              model.value().weights().size(),
              bundle.value().contentHash().c_str());
  Rng rng(seed);
  detectAndReport(extractor.value(), model.value(), numScenes, rng);
  return 0;
}

void runExtractor(const std::string& spec, int numScenes,
                  std::uint64_t seed) {
  using namespace pcnn;
  std::printf("\n=== extractor: %s ===\n", spec.c_str());
  vision::SyntheticPersonDataset dataset;
  Rng rng(seed);

  // 1. Training windows.
  std::printf("generating training data...\n");
  std::vector<vision::Image> positives, negatives, negativeScenes;
  for (int i = 0; i < 150; ++i) {
    positives.push_back(dataset.positiveWindow(rng));
    negatives.push_back(dataset.negativeWindow(rng));
  }
  for (int i = 0; i < 2; ++i) {
    negativeScenes.push_back(dataset.scene(rng, 256, 256, 0).image);
  }

  // 2. Stage A: pretrain the extractor where it is trainable (the parrot
  // learns to mimic its NApprox teacher; fixed-function backends no-op).
  const auto extractor =
      extract::makeExtractor(spec, extract::FeatureLayout::kFlatCell);
  extractor->pretrain(4000, 16, 0.005f);

  // 3. SVM on flat cell features, with hard-negative mining. The extractor
  // is shared with the detector: mining scans each negative scene over one
  // cached cell grid per pyramid level instead of re-extracting every
  // window from scratch.
  svm::LinearSvm model;
  svm::MiningParams mining;
  mining.scan.strideX = 16;
  mining.scan.strideY = 16;
  mining.scan.pyramid.maxLevels = 3;
  const auto miningResult = svm::trainWithHardNegatives(
      model, *extractor, positives, negatives, negativeScenes, mining);
  std::printf("trained SVM: %d hard negatives mined, train accuracy %.3f\n",
              miningResult.minedNegatives, miningResult.finalTrainAccuracy);

  // 4-5. Multi-scale detection on fresh scenes (window rows scanned on the
  // thread pool; set PCNN_NUM_THREADS to control it) plus the evaluation
  // summary.
  detectAndReport(extractor, model, numScenes, rng);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pcnn;
  const int numScenes = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  if (const std::optional<std::string> bundlePath = env::raw("PCNN_BUNDLE")) {
    return runBundle(*bundlePath, numScenes, seed);
  }
  if (argc > 3) {
    runExtractor(argv[3], numScenes, seed);
    return 0;
  }
  for (const std::string& name : extract::ExtractorRegistry::instance().names()) {
    runExtractor(name, numScenes, seed);
  }

  // With PCNN_TRACE / PCNN_METRICS set, the whole run's spans and counters
  // are exported here (and again at exit, harmlessly overwriting).
  if (!obs::configuredTracePath().empty() ||
      !obs::configuredMetricsPath().empty()) {
    obs::writeConfiguredReports();
    std::printf("\nobs: trace=%s metrics=%s\n",
                obs::configuredTracePath().empty()
                    ? "(off)"
                    : obs::configuredTracePath().c_str(),
                obs::configuredMetricsPath().empty()
                    ? "(off)"
                    : obs::configuredMetricsPath().c_str());
  }
  return 0;
}
