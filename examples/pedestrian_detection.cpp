// End-to-end pedestrian detection on synthetic scenes: train an SVM on
// NApprox HoG features with hard-negative mining, scan a multi-scale
// pyramid with the grid detector, apply NMS (epsilon = 0.2), and report
// detections against ground truth -- the full Figure-4-style pipeline on a
// couple of scenes.
//
// Usage: pedestrian_detection [numScenes] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "core/detector.hpp"
#include "eval/detection_eval.hpp"
#include "napprox/napprox.hpp"
#include "svm/linear_svm.hpp"
#include "svm/mining.hpp"
#include "vision/pgm.hpp"
#include "vision/synth.hpp"

int main(int argc, char** argv) {
  using namespace pcnn;
  const int numScenes = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  vision::SyntheticPersonDataset dataset;
  Rng rng(seed);

  // 1. Training windows.
  std::printf("generating training data...\n");
  std::vector<vision::Image> positives, negatives, negativeScenes;
  for (int i = 0; i < 150; ++i) {
    positives.push_back(dataset.positiveWindow(rng));
    negatives.push_back(dataset.negativeWindow(rng));
  }
  for (int i = 0; i < 2; ++i) {
    negativeScenes.push_back(dataset.scene(rng, 256, 256, 0).image);
  }

  // 2. SVM on flat NApprox cell features, with hard-negative mining. The
  // grid/assembler pair is shared with the detector: mining scans each
  // negative scene over one cached cell grid per pyramid level instead of
  // re-extracting every window from scratch.
  napprox::NApproxHog featureHog;
  auto grid = [&featureHog](const vision::Image& img) {
    return featureHog.computeCells(img);
  };
  auto assembler = core::cellFeatureAssembler(8, 16);
  svm::LinearSvm model;
  svm::MiningParams mining;
  mining.scan.strideX = 16;
  mining.scan.strideY = 16;
  mining.scan.pyramid.maxLevels = 3;
  const auto miningResult = svm::trainWithHardNegatives(
      model, svm::GridExtractorPair{grid, assembler, 8}, positives, negatives,
      negativeScenes, mining);
  std::printf("trained SVM: %d hard negatives mined, train accuracy %.3f\n",
              miningResult.minedNegatives, miningResult.finalTrainAccuracy);

  // 3. Multi-scale detection on fresh scenes (window rows scanned on the
  // thread pool; set PCNN_NUM_THREADS to control it).
  core::GridDetectorParams params;
  params.scoreThreshold = 0.25f;
  core::GridDetector detector(params, grid, assembler,
                              [&model](const std::vector<float>& f) {
                                return static_cast<float>(model.decision(f));
                              });

  std::vector<eval::ImageResult> results;
  for (int s = 0; s < numScenes; ++s) {
    const vision::Scene scene = dataset.scene(rng, 320, 256, 2, 96, 180);
    const auto detections = detector.detect(scene.image);
    std::printf("scene %d: %zu ground truth, %zu detections after NMS\n", s,
                scene.groundTruth.size(), detections.size());
    for (const auto& det : detections) {
      std::printf("  box (%.0f,%.0f %.0fx%.0f) score %.2f\n", det.box.x,
                  det.box.y, det.box.w, det.box.h, det.score);
    }
    if (s == 0) {
      vision::writePgm(scene.image, "/tmp/pcnn_scene0.pgm");
      std::printf("  (scene image written to /tmp/pcnn_scene0.pgm)\n");
    }
    eval::ImageResult r;
    r.detections = detections;
    r.groundTruth = scene.groundTruth;
    results.push_back(std::move(r));
  }

  // 4. Evaluation summary.
  const eval::Counts counts = eval::evaluateAtThreshold(results, 0.0f);
  std::printf("\noverall: TP=%d FP=%d misses=%d\n", counts.truePositives,
              counts.falsePositives, counts.misses);
  const auto curve = eval::missRateCurve(results);
  std::printf("log-average miss rate: %.3f\n",
              eval::logAverageMissRate(curve));
  return 0;
}
