// Model-bundle utility: pack a trained deployment into one versioned
// container, inspect a bundle's manifest and chunks, or verify that a
// bundle reloads into a pipeline with bitwise-reproducible scores.
//
// Usage:
//   bundle_tool pack <out.pcnb> [spec] [--windows N] [--epochs N] [--seed N]
//       Train a small pipeline end to end (stage A where the extractor is
//       trainable, stage B classifier training, plus a mined linear SVM on
//       the same features) on synthetic windows, then save extractor state,
//       classifier network and SVM hyperplane as one bundle.
//   bundle_tool inspect <bundle.pcnb>
//       Print the manifest, the chunk table and the content-hash check.
//   bundle_tool verify <bundle.pcnb> [--windows N] [--seed N]
//       Load the bundle twice into fresh pipelines and require bitwise
//       score parity on deterministic synthetic windows. Exits nonzero on
//       hash mismatch, load failure or any diverging score.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "extract/registry.hpp"
#include "io/bundle.hpp"
#include "svm/linear_svm.hpp"
#include "svm/mining.hpp"
#include "svm/serialize.hpp"
#include "vision/synth.hpp"

namespace {

using namespace pcnn;

struct ToolArgs {
  std::string command;
  std::string path;
  std::string spec = "hog";
  int windows = 60;
  int epochs = 2;
  std::uint64_t seed = 7;
};

bool parseArgs(int argc, char** argv, ToolArgs& args) {
  if (argc < 3) return false;
  args.command = argv[1];
  args.path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--windows" && i + 1 < argc) {
      args.windows = std::atoi(argv[++i]);
    } else if (flag == "--epochs" && i + 1 < argc) {
      args.epochs = std::atoi(argv[++i]);
    } else if (flag == "--seed" && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag[0] != '-' && args.command == "pack") {
      args.spec = flag;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", flag.c_str());
      return false;
    }
  }
  return args.windows > 0 && args.epochs > 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  bundle_tool pack <out.pcnb> [spec] [--windows N] [--epochs N] "
      "[--seed N]\n"
      "  bundle_tool inspect <bundle.pcnb>\n"
      "  bundle_tool verify <bundle.pcnb> [--windows N] [--seed N]\n");
}

/// Deterministic labelled training/eval windows (64x128, the default
/// extractor geometry).
void makeWindows(int count, std::uint64_t seed,
                 std::vector<vision::Image>& windows,
                 std::vector<int>& labels) {
  vision::SyntheticPersonDataset dataset;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    const bool positive = i % 2 == 0;
    windows.push_back(positive ? dataset.positiveWindow(rng)
                               : dataset.negativeWindow(rng));
    labels.push_back(positive ? 1 : -1);
  }
}

int runPack(const ToolArgs& args) {
  extract::ExtractorOptions options;
  options.seed = args.seed;
  StatusOr<std::shared_ptr<extract::FeatureExtractor>> extractor =
      extract::ExtractorRegistry::instance().tryCreate(args.spec, options);
  if (!extractor.ok()) {
    std::fprintf(stderr, "pack: %s\n",
                 extractor.status().toString().c_str());
    return 1;
  }

  if (extractor.value()->hasTrainedState()) {
    std::printf("stage A: pretraining %s...\n", args.spec.c_str());
    const float loss = extractor.value()->pretrain(1000, 4, 0.01f);
    std::printf("stage A: final loss %.4f\n", static_cast<double>(loss));
  }

  std::vector<vision::Image> windows;
  std::vector<int> labels;
  makeWindows(args.windows, args.seed, windows, labels);

  eedn::EednClassifierConfig config;
  config.inputSize = extractor.value()->featureDim();
  config.hiddenWidths = {32};
  config.outputPopulation = 4;
  config.inputScale = 1.0f / 64.0f;
  config.seed = args.seed;
  core::PartitionedPipeline pipeline(extractor.value(), config);
  std::printf("stage B: training classifier on %d windows...\n",
              args.windows);
  const float loss =
      pipeline.trainClassifier(windows, labels, args.epochs, 0.01f);
  std::printf("stage B: final loss %.4f, train accuracy %.3f\n",
              static_cast<double>(loss),
              pipeline.evalAccuracy(windows, labels));

  // The SVM head rides along in the same bundle (pedestrian_detection's
  // detector scores with it).
  svm::LinearSvm model;
  std::vector<vision::Image> negativeScenes;
  {
    vision::SyntheticPersonDataset dataset;
    Rng rng(args.seed + 1);
    negativeScenes.push_back(dataset.scene(rng, 256, 256, 0).image);
  }
  svm::MiningParams mining;
  mining.scan.strideX = 16;
  mining.scan.strideY = 16;
  mining.scan.pyramid.maxLevels = 2;
  std::vector<vision::Image> positives, negatives;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    (labels[i] > 0 ? positives : negatives).push_back(windows[i]);
  }
  const svm::MiningResult mined = svm::trainWithHardNegatives(
      model, *extractor.value(), positives, negatives, negativeScenes,
      mining);
  std::printf("svm: %d hard negatives mined, train accuracy %.3f\n",
              mined.minedNegatives, mined.finalTrainAccuracy);

  io::Bundle bundle;
  if (Status status = pipeline.packBundle(bundle, options); !status.ok()) {
    std::fprintf(stderr, "pack: %s\n", status.toString().c_str());
    return 1;
  }
  std::ostringstream svmBytes;
  if (Status status = svm::trySaveModel(model, svmBytes); !status.ok()) {
    std::fprintf(stderr, "pack: %s\n", status.toString().c_str());
    return 1;
  }
  bundle.setChunk(io::chunks::kSvmModel, svmBytes.str());

  if (Status status = bundle.trySaveFile(args.path); !status.ok()) {
    std::fprintf(stderr, "pack: %s\n", status.toString().c_str());
    return 1;
  }
  std::printf("packed %s (spec %s, content hash %s)\n", args.path.c_str(),
              args.spec.c_str(), bundle.contentHash().c_str());
  return 0;
}

int runInspect(const ToolArgs& args) {
  StatusOr<io::Bundle> bundle = io::Bundle::tryLoadFile(args.path);
  if (!bundle.ok()) {
    std::fprintf(stderr, "inspect: %s\n",
                 bundle.status().toString().c_str());
    return 1;
  }
  std::printf("manifest:\n");
  for (const auto& [key, value] : bundle.value().manifest().fields()) {
    std::printf("  %-32s %s\n", key.c_str(), value.c_str());
  }
  std::printf("chunks:\n");
  for (const std::string& name : bundle.value().chunkNames()) {
    std::printf("  %-32s %zu bytes\n", name.c_str(),
                bundle.value().chunk(name)->size());
  }
  const Status hash = bundle.value().verifyContentHash();
  std::printf("content hash: %s\n",
              hash.ok() ? "OK" : hash.toString().c_str());
  return hash.ok() ? 0 : 1;
}

int runVerify(const ToolArgs& args) {
  StatusOr<io::Bundle> bundle = io::Bundle::tryLoadFile(args.path);
  if (!bundle.ok()) {
    std::fprintf(stderr, "verify: %s\n",
                 bundle.status().toString().c_str());
    return 1;
  }
  if (Status status = bundle.value().verifyContentHash(); !status.ok()) {
    std::fprintf(stderr, "verify: %s\n", status.toString().c_str());
    return 1;
  }

  // Two independent loads (not one load scored twice): stateful extractors
  // restart their coding RNG stream on load, so parity across fresh loads
  // is the reproducibility a deployment actually relies on.
  StatusOr<core::PartitionedPipeline> first =
      core::PartitionedPipeline::tryLoadBundle(bundle.value());
  StatusOr<core::PartitionedPipeline> second =
      core::PartitionedPipeline::tryLoadBundle(bundle.value());
  if (!first.ok() || !second.ok()) {
    std::fprintf(stderr, "verify: %s\n",
                 (first.ok() ? second : first).status().toString().c_str());
    return 1;
  }

  std::vector<vision::Image> windows;
  std::vector<int> labels;
  makeWindows(args.windows, args.seed + 99, windows, labels);
  const std::vector<float> a = first.value().scoreAllDegraded(windows);
  const std::vector<float> b = second.value().scoreAllDegraded(windows);
  if (a.size() != b.size()) {
    std::fprintf(stderr, "verify: score count mismatch\n");
    return 1;
  }
  int mismatches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) ++mismatches;
  }
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "verify: %d of %zu scores differ between two loads\n",
                 mismatches, a.size());
    return 1;
  }
  std::printf("verified %s: %zu windows, bitwise score parity across two "
              "loads\n",
              args.path.c_str(), a.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ToolArgs args;
  if (!parseArgs(argc, argv, args)) {
    usage();
    return 2;
  }
  if (args.command == "pack") return runPack(args);
  if (args.command == "inspect") return runInspect(args);
  if (args.command == "verify") return runVerify(args);
  usage();
  return 2;
}
