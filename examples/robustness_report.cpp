// Robustness sweep: how gracefully the two TrueNorth extractor corelets
// degrade under injected hardware faults (see DESIGN.md 5d and
// src/tn/faults.hpp).
//
// The report runs the NApprox HoG corelet and the Parrot Eedn network in
// the tick-accurate simulator under a sweep of fault plans -- several
// spike-drop rates and dead-core counts -- and compares each faulty run
// against the fault-free reference semantics:
//   - NApprox: 18-bin cell histograms vs QuantizedNApproxHog's tick model
//     (exact parity when fault-free);
//   - Parrot: mapped-network output bits vs MappedEedn::referenceForward
//     (exact parity when fault-free).
// Reported per configuration: dominant-bin / output-bit miss rate,
// Pearson correlation of the faulty outputs against the reference, spike
// activity, and the tn.faults.* event tallies attributing the loss.
//
// A final degraded-detection section runs a GridDetector whose backend
// poisons small pyramid levels (the level-skip path: detect.level.degraded
// span + DegradationReport entry) so a configured flight recorder
// (PCNN_FLIGHT) witnesses both fault classes in one process; the report
// then dumps the recorder explicitly so the file holds the full run tail.
//
// The zero-fault row doubles as the acceptance check of the fault layer
// itself: a FaultPlan with nothing to inject is never attached, so its
// outputs must be bitwise-identical to a plain run and its fault counters
// must read exactly zero; the report verifies both and records the result.
//
// Emits BENCH_robustness.json (with provenance) next to a human table.
//
// Usage: robustness_report [outputPath]
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/detector.hpp"
#include "eedn/mapper.hpp"
#include "eval/stats.hpp"
#include "extract/extractor.hpp"
#include "hog/hog.hpp"
#include "napprox/corelet.hpp"
#include "napprox/quantized.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "parrot/parrot.hpp"
#include "tn/faults.hpp"
#include "vision/synth.hpp"

namespace {

using namespace pcnn;

/// One fault configuration of the sweep. The drop axis and the dead-core
/// axis are swept independently so each curve isolates one fault class.
struct FaultConfig {
  double drop = 0.0;
  int deadCores = 0;
};

const FaultConfig kConfigs[] = {
    {0.0, 0},  {0.01, 0}, {0.05, 0}, {0.15, 0},  // spike-drop curve
    {0.0, 1},  {0.0, 2},                          // dead-core curve
};
constexpr std::uint64_t kFaultSeed = 7;

/// The sample cell positions measured in each 64x128 window.
const std::pair<int, int> kSampleCells[] = {
    {8, 16}, {16, 40}, {24, 64}, {32, 88}, {40, 104}, {48, 24}};

/// Degradation of one extractor under one fault configuration.
struct SweepRow {
  FaultConfig config;
  long outputs = 0;       ///< compared scalar outputs (bins or bits)
  long misses = 0;        ///< dominant-bin / output-bit mismatches
  double correlation = 1.0;
  tn::RunResult activity;        ///< aggregated across all runs
  tn::FaultCounts faults;        ///< events injected during this config

  double missRate() const {
    return outputs > 0 ? static_cast<double>(misses) / outputs : 0.0;
  }
};

std::optional<tn::FaultPlan> planFor(const FaultConfig& config) {
  tn::FaultPlan plan;
  plan.spikeDropProb = config.drop;
  plan.deadCores = config.deadCores;
  plan.seed = kFaultSeed;
  if (!plan.any()) return std::nullopt;
  return plan;
}

int argmax(const std::vector<float>& values) {
  int best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

/// NApprox sweep: fresh corelet per configuration (weight flips and dead
/// cores corrupt network state, so configurations must not share one),
/// compared against the quantized model's tick-accurate reference.
SweepRow runNApprox(const FaultConfig& config,
                    const std::vector<vision::Image>& windows,
                    std::vector<float>* outputsOut = nullptr) {
  const napprox::QuantizedNApproxHog model(
      {}, {}, napprox::QuantizedMode::kTickAccurate);
  napprox::NApproxCorelet corelet(model);
  if (const auto plan = planFor(config)) {
    corelet.network().setFaultPlan(*plan);
  }

  SweepRow row;
  row.config = config;
  std::vector<float> faulty, reference;
  const tn::FaultCounts before = tn::globalFaultCounts();
  for (const vision::Image& window : windows) {
    for (const auto& [x0, y0] : kSampleCells) {
      const std::vector<float> got = corelet.extract(window, x0, y0);
      const std::vector<float> want = model.cellHistogram(window, x0, y0);
      // Recorded spikes are the aggregate of interest in a fault sweep, so
      // merge them rather than letting accumulate() drop them.
      row.activity.accumulate(corelet.lastRun(), /*mergeOutputSpikes=*/true);
      if (argmax(got) != argmax(want)) ++row.misses;
      ++row.outputs;
      faulty.insert(faulty.end(), got.begin(), got.end());
      reference.insert(reference.end(), want.begin(), want.end());
    }
  }
  row.faults = tn::globalFaultCounts() - before;
  row.correlation = eval::pearsonCorrelation(faulty, reference);
  if (outputsOut != nullptr) *outputsOut = std::move(faulty);
  return row;
}

/// Parrot sweep: the Eedn cell network mapped onto the simulator, compared
/// bit-for-bit against the mapping's plain-C++ reference semantics.
SweepRow runParrot(const FaultConfig& config, parrot::ParrotHog& model,
                   const std::vector<vision::Image>& windows,
                   std::vector<float>* outputsOut = nullptr) {
  const auto mapped = eedn::TnMapper::map(model.net());
  if (const auto plan = planFor(config)) {
    mapped->network().setFaultPlan(*plan);
  }

  SweepRow row;
  row.config = config;
  std::vector<float> faulty, reference;
  std::vector<int> input(static_cast<std::size_t>(mapped->inputSize()), 0);
  const tn::FaultCounts before = tn::globalFaultCounts();
  for (const vision::Image& window : windows) {
    for (const auto& [x0, y0] : kSampleCells) {
      // 10x10 binarized neighbourhood of the cell, as in power_report.
      for (int y = 0; y < 10; ++y) {
        for (int x = 0; x < 10; ++x) {
          const std::size_t i = static_cast<std::size_t>(y) * 10 + x;
          if (i < input.size()) {
            input[i] = window.atClamped(x0 - 1 + x, y0 - 1 + y) > 0.5f;
          }
        }
      }
      const std::vector<int> got = mapped->forwardSpikes(input);
      const std::vector<int> want = mapped->referenceForward(input);
      row.activity.accumulate(mapped->lastRun(), /*mergeOutputSpikes=*/true);
      for (std::size_t i = 0; i < got.size(); ++i) {
        if (got[i] != want[i]) ++row.misses;
        ++row.outputs;
        faulty.push_back(static_cast<float>(got[i]));
        reference.push_back(static_cast<float>(want[i]));
      }
    }
  }
  row.faults = tn::globalFaultCounts() - before;
  row.correlation = eval::pearsonCorrelation(faulty, reference);
  if (outputsOut != nullptr) *outputsOut = std::move(faulty);
  return row;
}

/// HoG-backed extractor whose backend "fails" on small pyramid levels --
/// the deterministic stand-in for a poisoned level or a simulator fault,
/// driving the detector's level-skip (degradation) path.
class FlakyExtractor : public extract::FeatureExtractor {
 public:
  explicit FlakyExtractor(int failBelowWidth)
      : FeatureExtractor("flaky", extract::FeatureLayout::kFlatCell, 9, 2, 2),
        failBelowWidth_(failBelowWidth) {}

  hog::CellGrid cellGrid(const vision::Image& image) override {
    if (image.width() < failBelowWidth_) {
      throw std::runtime_error("flaky backend: level poisoned");
    }
    return hogRef_.computeCells(image);
  }

  extract::ExtractorInfo info() const override { return {}; }

 private:
  int failBelowWidth_;
  hog::HogExtractor hogRef_;
};

void printRow(const char* name, const SweepRow& row) {
  std::printf("%-8s %6.2f %5d %10.4f %12.4f %10ld %8ld %8ld\n", name,
              row.config.drop, row.config.deadCores, row.missRate(),
              row.correlation, row.activity.totalSpikes,
              row.faults.droppedSpikes, row.faults.deadCoreDrops);
}

void writeRowJson(std::FILE* out, const SweepRow& row, bool last) {
  std::fprintf(
      out,
      "    {\"drop\": %.4f, \"dead_cores\": %d, \"miss_rate\": %.6f,\n"
      "     \"histogram_correlation\": %.6f, \"outputs\": %ld,\n"
      "     \"total_spikes\": %ld, \"ticks_run\": %ld,\n"
      "     \"fault_events\": {\"dropped\": %ld, \"dead_core_drops\": %ld,\n"
      "       \"stuck_on\": %ld, \"stuck_off\": %ld, \"weight_flips\": %ld}}"
      "%s\n",
      row.config.drop, row.config.deadCores, row.missRate(), row.correlation,
      row.outputs, row.activity.totalSpikes, row.activity.ticksRun,
      row.faults.droppedSpikes, row.faults.deadCoreDrops,
      row.faults.stuckOnSpikes, row.faults.stuckOffSuppressed,
      row.faults.weightFlips, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outPath = argc > 1 ? argv[1] : "BENCH_robustness.json";

  vision::SyntheticPersonDataset dataset;
  Rng rng(21);
  std::vector<vision::Image> windows;
  windows.push_back(dataset.positiveWindow(rng));
  windows.push_back(dataset.positiveWindow(rng));
  const std::size_t cellsPerConfig = windows.size() * std::size(kSampleCells);

  const std::string provenance = bench::provenanceJson();
  std::printf("provenance: %s\n", provenance.c_str());
  std::printf("fault sweep: %zu configs, %zu sample cells each, seed %llu\n\n",
              std::size(kConfigs), cellsPerConfig,
              static_cast<unsigned long long>(kFaultSeed));

  // --- Zero-fault acceptance check ----------------------------------------
  // A zero plan must be bitwise-identical to no plan, with zero fault
  // events counted. Compare the zero-config outputs against a run that
  // never touches the fault API at all.
  parrot::ParrotHog parrotModel;
  std::vector<float> zeroPlanOutputs, plainOutputs;
  const tn::FaultCounts zeroBefore = tn::globalFaultCounts();
  const SweepRow zeroNApprox =
      runNApprox(kConfigs[0], windows, &zeroPlanOutputs);
  {
    const napprox::QuantizedNApproxHog model(
        {}, {}, napprox::QuantizedMode::kTickAccurate);
    napprox::NApproxCorelet corelet(model);  // fault API never touched
    for (const vision::Image& window : windows) {
      for (const auto& [x0, y0] : kSampleCells) {
        const std::vector<float> h = corelet.extract(window, x0, y0);
        plainOutputs.insert(plainOutputs.end(), h.begin(), h.end());
      }
    }
  }
  const tn::FaultCounts zeroDelta = tn::globalFaultCounts() - zeroBefore;
  const bool zeroIdentical = zeroPlanOutputs == plainOutputs;
  const bool zeroCounters = zeroDelta.total() == 0;
  // With PCNN_FAULTS set every network -- including the "zero-fault"
  // configs -- gets the env plan, so bitwise identity cannot hold and the
  // check is reported but not enforced in the exit code.
  const bool envFaulted = tn::envFaultPlan().has_value();
  std::printf("zero-fault check: outputs %s fault-free run, %ld fault "
              "events counted%s\n\n",
              zeroIdentical ? "bitwise-identical to" : "DIFFER from",
              zeroDelta.total(),
              envFaulted ? " (PCNN_FAULTS set: check not enforced)" : "");

  // --- Sweep ---------------------------------------------------------------
  std::printf("%-8s %6s %5s %10s %12s %10s %8s %8s\n", "corelet", "drop",
              "dead", "miss rate", "correlation", "spikes", "dropped",
              "deadDrop");
  std::vector<SweepRow> napproxRows, parrotRows;
  for (const FaultConfig& config : kConfigs) {
    const SweepRow row = config.drop == 0.0 && config.deadCores == 0
                             ? zeroNApprox
                             : runNApprox(config, windows);
    napproxRows.push_back(row);
    printRow("napprox", row);
  }
  for (const FaultConfig& config : kConfigs) {
    const SweepRow row = runParrot(config, parrotModel, windows);
    parrotRows.push_back(row);
    printRow("parrot", row);
  }

  // Parrot fault-free parity doubles as a simulator-vs-reference check.
  const bool parrotParity = parrotRows[0].misses == 0;
  if (!parrotParity) {
    std::printf("\nWARNING: fault-free parrot run disagrees with its "
                "reference semantics (%ld/%ld bits)\n",
                parrotRows[0].misses, parrotRows[0].outputs);
  }

  // --- Degraded detection --------------------------------------------------
  // Pyramid levels are 128, ~116, ~105, ~96 px wide; the flaky backend
  // fails the last two, so the detector skips them, records the loss, and
  // keeps scanning -- the detect.level.degraded path end to end.
  core::DegradationReport detReport;
  std::size_t detDetections = 0;
  {
    core::GridDetectorParams dp;
    dp.scoreThreshold = -1e9f;
    dp.pyramid.maxLevels = 4;
    vision::Image scene(128, 128, 0.5f);
    for (int y = 0; y < 128; ++y) {
      for (int x = 0; x < 128; ++x) {
        scene.at(x, y) = static_cast<float>((x + y) % 17) / 17.0f;
      }
    }
    core::GridDetector detector(dp, std::make_shared<FlakyExtractor>(110),
                                [](const std::vector<float>&) { return 1.0f; });
    detDetections = detector.detect(scene, -1e9f, &detReport).size();
  }
  std::printf("\ndegraded detection: %s (%zu detections from surviving "
              "levels)\n",
              detReport.summary().c_str(), detDetections);

  // With PCNN_FLIGHT set, the first fault event above already auto-dumped
  // the recorder; overwrite that with the full run tail so the file holds
  // both the tn.faults.* count events and the degraded detect.level spans.
  if (obs::flightEnabled() && !obs::configuredFlightPath().empty()) {
    obs::dumpFlightRecorder("", "robustness_report.final");
    std::printf("flight recorder dumped to %s\n",
                obs::configuredFlightPath().c_str());
  }

  std::FILE* out = std::fopen(outPath.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", outPath.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"provenance\": %s,\n"
               "  \"fault_seed\": %llu,\n"
               "  \"sample_cells_per_config\": %zu,\n"
               "  \"zero_fault\": {\"bitwise_identical\": %s, "
               "\"fault_events\": %ld},\n"
               "  \"parrot_fault_free_parity\": %s,\n"
               "  \"degraded_detection\": {\"levels_skipped\": %d, "
               "\"windows_lost\": %ld, \"degraded\": %s},\n",
               provenance.c_str(),
               static_cast<unsigned long long>(kFaultSeed), cellsPerConfig,
               zeroIdentical && zeroCounters ? "true" : "false",
               zeroDelta.total(), parrotParity ? "true" : "false",
               detReport.levelsSkipped, detReport.windowsLost,
               detReport.degraded() ? "true" : "false");
  std::fprintf(out, "  \"napprox\": [\n");
  for (std::size_t i = 0; i < napproxRows.size(); ++i) {
    writeRowJson(out, napproxRows[i], i + 1 == napproxRows.size());
  }
  std::fprintf(out, "  ],\n  \"parrot\": [\n");
  for (std::size_t i = 0; i < parrotRows.size(); ++i) {
    writeRowJson(out, parrotRows[i], i + 1 == parrotRows.size());
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", outPath.c_str());

  return envFaulted || (zeroIdentical && zeroCounters) ? 0 : 1;
}
