// Extension E1 (the paper's future work: "the thorough exploration of
// monolithic approaches, for more direct comparison"). The paper's
// Absorbed network -- a grouped dense Eedn over raw 64x128 pixels with the
// combined 3888-core budget -- fails to converge on the available training
// set (Sec. 5.1). This bench explores the monolithic design space:
//   (a) grouped trinary dense on raw pixels (the paper's Absorbed);
//   (b) a trinary *convolutional* front end with average pooling, which
//       injects the translation structure the dense variant must learn
//       from data;
//   (c) variant (a) with 4x more training windows (is it the data or the
//       architecture?).
// Reported: training accuracy, held-out accuracy, and blind-decision rate.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "eedn/classifier.hpp"
#include "eedn/trinary.hpp"
#include "eedn/trinary_conv.hpp"
#include "nn/loss.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"

namespace {

using namespace pcnn;

struct Outcome {
  double trainAccuracy;
  double testAccuracy;
  double blindRate;
};

Outcome evaluate(eedn::EednClassifier& classifier,
                 const eedn::BinaryDataset& train,
                 const eedn::BinaryDataset& test, int epochs, float lr) {
  for (int epoch = 0; epoch < epochs; ++epoch) {
    classifier.trainEpoch(train, lr);
  }
  return {classifier.evalAccuracy(train), classifier.evalAccuracy(test),
          classifier.blindDecisionRate(test)};
}

eedn::BinaryDataset pixelDataset(const std::vector<vision::Image>& pos,
                                 const std::vector<vision::Image>& neg) {
  eedn::BinaryDataset data;
  for (const auto& w : pos) {
    data.features.push_back(core::rawPixelFeatures(w));
    data.labels.push_back(1);
  }
  for (const auto& w : neg) {
    data.features.push_back(core::rawPixelFeatures(w));
    data.labels.push_back(-1);
  }
  return data;
}

// Conv-front monolithic network: TrinaryConv2d(1->6, k5, p2) + spike +
// AvgPool(4) -> 16x32x6 = 3072 -> grouped dense head. Trained with the
// same softmax-CE protocol as EednClassifier.
struct ConvMonolithic {
  Rng rng{77};
  nn::Sequential net;
  ConvMonolithic() {
    net.add(std::make_unique<eedn::TrinaryConv2d>(1, 128, 64, 6, 5, 2, rng));
    net.add(std::make_unique<eedn::SpikingThreshold>(6 * 128 * 64, 2.5f));
    net.add(std::make_unique<nn::AvgPool2d>(6, 128, 64, 4));
    net.add(std::make_unique<eedn::PartitionedDense>(6 * 32 * 16, 96, 12,
                                                     rng));
    net.add(std::make_unique<eedn::SpikingThreshold>(
        (6 * 32 * 16 / 96) * 12, 5.0f));
    net.add(std::make_unique<eedn::TrinaryDense>((6 * 32 * 16 / 96) * 12, 2,
                                                 rng));
  }
  float score(const std::vector<float>& pixels) {
    const auto out = net.forward(pixels, false);
    return out[1] - out[0];
  }
  void trainEpochs(const eedn::BinaryDataset& data, int epochs, float lr) {
    Rng order(5);
    for (int epoch = 0; epoch < epochs; ++epoch) {
      int inBatch = 0;
      for (std::size_t i = 0; i < data.features.size(); ++i) {
        const auto scores = net.forward(data.features[i], true);
        const int target = data.labels[i] > 0 ? 1 : 0;
        const auto loss = nn::softmaxCrossEntropy(scores, target);
        net.backward(loss.grad);
        if (++inBatch == 8) {
          net.applyGradients(lr, 0.9f, inBatch);
          inBatch = 0;
        }
      }
      if (inBatch > 0) net.applyGradients(lr, 0.9f, inBatch);
    }
  }
  Outcome evaluate(const eedn::BinaryDataset& train,
                   const eedn::BinaryDataset& test) {
    auto accuracy = [&](const eedn::BinaryDataset& d) {
      int correct = 0;
      for (std::size_t i = 0; i < d.features.size(); ++i) {
        if ((score(d.features[i]) >= 0 ? 1 : -1) == d.labels[i]) ++correct;
      }
      return static_cast<double>(correct) /
             static_cast<double>(d.features.size());
    };
    int positive = 0;
    for (const auto& f : test.features) {
      if (score(f) >= 0) ++positive;
    }
    const double p = static_cast<double>(positive) /
                     static_cast<double>(test.features.size());
    return {accuracy(train), accuracy(test), std::max(p, 1.0 - p)};
  }
};

}  // namespace

int main() {
  std::printf("=== Extension E1: the monolithic (Absorbed) design space "
              "===\n\n");
  vision::SyntheticPersonDataset synth;
  Rng rng(3);
  std::vector<vision::Image> trainPos, trainNeg, testPos, testNeg;
  for (int i = 0; i < 110; ++i) {
    trainPos.push_back(synth.positiveWindow(rng));
    trainNeg.push_back(synth.negativeWindow(rng));
  }
  std::vector<vision::Image> bigPos = trainPos, bigNeg = trainNeg;
  for (int i = 0; i < 330; ++i) {
    bigPos.push_back(synth.positiveWindow(rng));
    bigNeg.push_back(synth.negativeWindow(rng));
  }
  for (int i = 0; i < 80; ++i) {
    testPos.push_back(synth.positiveWindow(rng));
    testNeg.push_back(synth.negativeWindow(rng));
  }
  const eedn::BinaryDataset train = pixelDataset(trainPos, trainNeg);
  const eedn::BinaryDataset bigTrain = pixelDataset(bigPos, bigNeg);
  const eedn::BinaryDataset test = pixelDataset(testPos, testNeg);

  std::printf("%-44s %8s %8s %8s\n", "variant", "train", "test", "blind");

  {
    core::ResourceBudget budget;
    auto absorbed = core::makeAbsorbedClassifier(budget);
    const Outcome o = evaluate(*absorbed, train, test, 30, 0.05f);
    std::printf("%-44s %8.3f %8.3f %8.3f\n",
                "(a) grouped dense on pixels (paper)", o.trainAccuracy,
                o.testAccuracy, o.blindRate);
  }
  {
    ConvMonolithic conv;
    conv.trainEpochs(train, 12, 0.02f);
    const Outcome o = conv.evaluate(train, test);
    std::printf("%-44s %8.3f %8.3f %8.3f\n",
                "(b) trinary conv front end + avg pool", o.trainAccuracy,
                o.testAccuracy, o.blindRate);
  }
  {
    core::ResourceBudget budget;
    auto absorbed = core::makeAbsorbedClassifier(budget, 0.5f, 100);
    const Outcome o = evaluate(*absorbed, bigTrain, test, 30, 0.05f);
    std::printf("%-44s %8.3f %8.3f %8.3f\n",
                "(c) grouped dense, 4x training data", o.trainAccuracy,
                o.testAccuracy, o.blindRate);
  }

  std::printf("\nPaper context: the Absorbed network 'always makes blind "
              "decisions' with the available training set; the authors "
              "'suspect the network over-fits due to the training set used "
              "being insufficient for the size of network'. Structure "
              "(convolution) or more data should mitigate -- exactly what "
              "this extension probes.\n");
  return 0;
}
