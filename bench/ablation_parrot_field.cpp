// Ablation A3 (Sec. 3.2's training observation): "the initial layer in the
// network needed to be provided with all 8x8 inputs to the cell, or else it
// was difficult to train the response to cell-level, rather than local,
// gradient features." We compare the standard full-field parrot against a
// variant whose first layer only sees local row-bands of the patch, and
// additionally sweep the training-set size (the paper argues the parrot
// capitalizes on limited training budgets).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>

#include "common/rng.hpp"
#include "eedn/partitioned.hpp"
#include "eedn/trinary.hpp"
#include "nn/loss.hpp"
#include "nn/sequential.hpp"
#include "parrot/generator.hpp"
#include "parrot/parrot.hpp"

namespace {

using namespace pcnn;

// Builds a parrot-shaped net whose first layer is partitioned into local
// input bands instead of seeing the whole 10x10 field.
nn::Sequential makeLocalFieldNet(Rng& rng) {
  nn::Sequential net;
  // 10 bands of 10 pixels (one image row each), 12 neurons per band.
  net.add(std::make_unique<eedn::PartitionedDense>(100, 10, 12, rng));
  net.add(std::make_unique<eedn::SpikingThreshold>(120, 3.2f));
  net.add(std::make_unique<eedn::TrinaryDense>(120, 18, rng));
  return net;
}

struct EvalResult {
  double mse;
  double binAccuracy;
};

EvalResult evaluateNet(nn::Sequential& net,
                       const parrot::OrientedSampleGenerator& generator,
                       Rng& rng, int count) {
  double mse = 0.0;
  int evaluated = 0, correct = 0;
  for (const parrot::ParrotSample& s : generator.batch(count, rng)) {
    const auto out = net.forward(s.pixels, false);
    mse += nn::mseLoss(out, s.target).value;
    if (s.dominantBin >= 0) {
      const int predicted = static_cast<int>(
          std::max_element(out.begin(), out.end()) - out.begin());
      ++evaluated;
      if (predicted == s.dominantBin) ++correct;
    }
  }
  return {mse / count,
          evaluated > 0 ? static_cast<double>(correct) / evaluated : 0.0};
}

void trainNet(nn::Sequential& net,
              const parrot::OrientedSampleGenerator& generator, Rng& rng,
              int samples, int epochs, float lr) {
  const auto data = generator.batch(samples, rng);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    int inBatch = 0;
    for (const auto& s : data) {
      const auto out = net.forward(s.pixels, true);
      net.backward(nn::mseLoss(out, s.target).grad);
      if (++inBatch == 16) {
        net.applyGradients(lr, 0.9f, inBatch);
        inBatch = 0;
      }
    }
    if (inBatch > 0) net.applyGradients(lr, 0.9f, inBatch);
  }
}

}  // namespace

int main() {
  std::printf("=== Ablation A3: parrot first-layer input field and "
              "training-set size ===\n\n");
  const parrot::OrientedSampleGenerator generator;

  // --- full field vs local bands ------------------------------------------
  std::printf("%-28s %10s %16s\n", "first layer", "val MSE", "dominant-bin");
  {
    parrot::ParrotConfig config;
    config.seed = 41;
    parrot::ParrotHog full(config);
    full.train(generator, 4000, 16, 0.005f);
    Rng evalRng(100);
    EvalResult r = evaluateNet(full.net(), generator, evalRng, 400);
    std::printf("%-28s %10.4f %16.3f\n", "full 10x10 field", r.mse,
                r.binAccuracy);
  }
  {
    Rng rng(42);
    nn::Sequential local = makeLocalFieldNet(rng);
    Rng trainRng(43);
    trainNet(local, generator, trainRng, 4000, 16, 0.005f);
    Rng evalRng(100);
    EvalResult r = evaluateNet(local, generator, evalRng, 400);
    std::printf("%-28s %10.4f %16.3f\n", "local row bands", r.mse,
                r.binAccuracy);
  }
  std::printf("\nExpected: the local-field variant trains to a worse mimic "
              "(the paper's observation that the first layer needs the whole "
              "cell).\n\n");

  // --- training-set size sweep ---------------------------------------------
  std::printf("%-20s %10s %16s\n", "training samples", "val MSE",
              "dominant-bin");
  for (int samples : {250, 1000, 4000}) {
    parrot::ParrotConfig config;
    config.seed = 51;
    parrot::ParrotHog hog(config);
    hog.train(generator, samples, 16, 0.005f);
    Rng evalRng(100);
    EvalResult r = evaluateNet(hog.net(), generator, evalRng, 400);
    std::printf("%-20d %10.4f %16.3f\n", samples, r.mse, r.binAccuracy);
  }
  std::printf("\nExpected: the parrot trains acceptably even from small "
              "auto-generated sets -- labels are free because HoG is a "
              "well-defined function of the inputs.\n");
  return 0;
}
