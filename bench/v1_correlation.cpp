// V1 (Sec. 3.1): validation of the NApprox corelet against its software
// model. The paper reports >99.5% correlation between the TrueNorth
// hardware implementation and the software model at the same quantization
// width, over a thousand training images. Here:
//   (a) corelet-on-simulator vs tick-accurate software model -- expected
//       correlation 1.0 (the software model is the corelet's twin);
//   (b) tick-accurate model vs analytic quantized model;
//   (c) quantized model vs full-precision NApprox(fp) -- the paper's
//       quantization-effect comparison.
#include <cstdio>

#include "common/rng.hpp"
#include "eval/stats.hpp"
#include "napprox/corelet.hpp"
#include "napprox/napprox.hpp"
#include "napprox/quantized.hpp"
#include "vision/synth.hpp"

int main() {
  using namespace pcnn;
  std::printf("=== V1: corelet vs software-model correlation (Sec. 3.1) "
              "===\n\n");

  const napprox::NApproxHog fp;
  const napprox::QuantizedNApproxHog tick(
      {}, {}, napprox::QuantizedMode::kTickAccurate);
  const napprox::QuantizedNApproxHog analytic(
      {}, {}, napprox::QuantizedMode::kAnalytic);
  napprox::NApproxCorelet corelet(tick);

  vision::SyntheticPersonDataset synth;
  Rng rng(31);

  // ~1000 cells: 125 windows x 8 sampled cells (paper: a thousand training
  // images from the INRIA set).
  std::vector<double> hw, swTick, swAnalytic, swFp;
  int cells = 0;
  int exactMatches = 0;
  const int kWindows = 125;
  for (int i = 0; i < kWindows; ++i) {
    const vision::Image window =
        (i % 2 == 0) ? synth.positiveWindow(rng) : synth.negativeWindow(rng);
    for (int c = 0; c < 8; ++c) {
      const int cx = (c % 4) * 16;
      const int cy = (c / 4) * 56 + 8;
      const auto hHw = corelet.extract(window, cx, cy);
      const auto hTick = tick.cellHistogram(window, cx, cy);
      const auto hAnalytic = analytic.cellHistogram(window, cx, cy);
      const auto hFp = fp.cellHistogram(window, cx, cy);
      if (hHw == hTick) ++exactMatches;
      for (std::size_t k = 0; k < hHw.size(); ++k) {
        hw.push_back(hHw[k]);
        swTick.push_back(hTick[k]);
        swAnalytic.push_back(hAnalytic[k]);
        swFp.push_back(hFp[k]);
      }
      ++cells;
    }
  }

  std::printf("cells evaluated: %d (%zu histogram bins)\n\n", cells,
              hw.size());
  std::printf("(a) corelet-on-simulator vs tick-accurate software model:\n");
  std::printf("    correlation = %.6f, bit-exact cells = %d/%d\n",
              eval::pearsonCorrelation(hw, swTick), exactMatches, cells);
  std::printf("(b) tick-accurate vs analytic quantized model:\n");
  std::printf("    correlation = %.4f\n",
              eval::pearsonCorrelation(swTick, swAnalytic));
  std::printf("(c) quantized (64-spike) vs NApprox(fp):\n");
  std::printf("    correlation = %.4f\n",
              eval::pearsonCorrelation(hw, swFp));
  std::printf("\npaper reports >99.5%% correlation between hardware and "
              "software model at the same quantization width.\n");
  return 0;
}
