#pragma once

// Shared helpers for the experiment-regeneration benches. Each bench binary
// reproduces one table or figure of the paper (see DESIGN.md Section 4) and
// prints the same rows/series the paper reports. Scales (scene counts,
// training-set sizes) are chosen so every bench finishes in minutes on a
// laptop; the *shape* of each result is what must match the paper.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "core/detector.hpp"
#include "eval/detection_eval.hpp"
#include "hog/cell_kernels.hpp"
#include "io/bundle.hpp"
#include "obs/provenance.hpp"
#include "tn/engine.hpp"
#include "vision/synth.hpp"

namespace pcnn::bench {

/// Run provenance every bench writer shares: the process-wide fields from
/// obs::provenance() plus the hog layer's resolved kernel dispatch. One
/// helper instead of each bench duplicating its own subset of
/// thread/SIMD fields (BENCH_detect.json used to hand-roll them).
/// With PCNN_BUNDLE set, the bundle's manifest identity (spec + content
/// hash) is stamped in too, so a bench row can always be traced back to
/// the exact trained artifact it measured.
inline std::string provenanceJson() {
  std::vector<std::pair<std::string, std::string>> extras = {
      {"kernel_dispatch",
       hog::kernels::kindName(hog::kernels::activeKind())},
      {"simd_level", hog::kernels::simdLevel()},
      {"tn_engine", tn::engineName(tn::engineFromEnv())}};
  if (const std::optional<std::string> bundlePath = env::raw("PCNN_BUNDLE")) {
    StatusOr<io::Manifest> manifest =
        io::Bundle::tryLoadManifestFile(*bundlePath);
    if (manifest.ok()) {
      extras.emplace_back("bundle_spec",
                          manifest.value().get(io::keys::kSpec, "unknown"));
      extras.emplace_back(
          "bundle_hash",
          manifest.value().get(io::keys::kContentHash, "unrecorded"));
    } else {
      // Code name only: provenanceJson does not escape the message text.
      extras.emplace_back("bundle_error",
                          statusCodeName(manifest.status().code()));
    }
  }
  return obs::provenanceJson(obs::provenance(), extras);
}

/// Prints the provenance line benches emit before their rows.
inline void printProvenance() {
  std::printf("provenance: %s\n", provenanceJson().c_str());
}

/// Standard synthetic dataset sizes used across benches.
struct BenchDataset {
  std::vector<vision::Image> trainPositives;
  std::vector<vision::Image> trainNegatives;
  std::vector<vision::Image> negativeScenes;  ///< person-free, for mining
  std::vector<vision::Scene> testScenes;
};

inline BenchDataset makeBenchDataset(int trainCount, int negSceneCount,
                                     int testSceneCount, int sceneW,
                                     int sceneH, std::uint64_t seed) {
  BenchDataset data;
  vision::SyntheticPersonDataset synth;
  Rng rng(seed);
  for (int i = 0; i < trainCount; ++i) {
    data.trainPositives.push_back(synth.positiveWindow(rng));
    data.trainNegatives.push_back(synth.negativeWindow(rng));
  }
  for (int i = 0; i < negSceneCount; ++i) {
    data.negativeScenes.push_back(synth.scene(rng, sceneW, sceneH, 0).image);
  }
  for (int i = 0; i < testSceneCount; ++i) {
    data.testScenes.push_back(
        synth.scene(rng, sceneW, sceneH, 2, 96, 170));
  }
  return data;
}

/// Runs a detector over the test scenes and returns per-image results.
inline std::vector<eval::ImageResult> evaluateDetector(
    const core::GridDetector& detector,
    const std::vector<vision::Scene>& scenes) {
  std::vector<eval::ImageResult> results;
  results.reserve(scenes.size());
  for (const vision::Scene& scene : scenes) {
    eval::ImageResult r;
    r.detections = detector.detect(scene.image);
    r.groundTruth = scene.groundTruth;
    results.push_back(std::move(r));
  }
  return results;
}

/// Prints a miss-rate/FPPI curve as a fixed set of sample points plus the
/// log-average miss rate summary (the paper's Figures 4 and 5 axes).
inline void printCurve(const std::string& label,
                       const std::vector<eval::CurvePoint>& curve) {
  std::printf("%s\n", label.c_str());
  std::printf("  %10s  %10s  %10s\n", "threshold", "FPPI", "miss rate");
  const std::size_t step = curve.size() > 12 ? curve.size() / 12 : 1;
  for (std::size_t i = 0; i < curve.size(); i += step) {
    std::printf("  %10.3f  %10.3f  %10.3f\n", curve[i].threshold,
                curve[i].fppi, curve[i].missRate);
  }
  if (!curve.empty()) {
    std::printf("  %10s  %10.3f  %10.3f\n", "(last)", curve.back().fppi,
                curve.back().missRate);
  }
  std::printf("  log-average miss rate: %.3f\n\n",
              eval::logAverageMissRate(curve));
}

}  // namespace pcnn::bench
