// Table 1: conventional HoG computation vs. the TrueNorth approximations.
// For each row of the paper's Table 1 this harness quantifies how closely
// the TrueNorth primitive reproduces the original computation on random
// gradients and synthetic cells:
//   - gradient vector: pattern-matching filters equal the [-1,0,1] masks;
//   - gradient angle:  argmax_theta (Ix cos + Iy sin) vs atan2, error bound
//     by half the 20-degree direction spacing;
//   - gradient magnitude: the winning inner product vs sqrt(Ix^2+Iy^2);
//   - histogram: count-binned 18-direction histogram vs magnitude-weighted
//     9-bin voting (correlation after folding to unsigned orientation).
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "eval/stats.hpp"
#include "hog/gradient.hpp"
#include "hog/hog.hpp"
#include "napprox/napprox.hpp"
#include "vision/synth.hpp"

int main() {
  using namespace pcnn;
  std::printf("=== Table 1: conventional vs TrueNorth HoG primitives ===\n\n");
  Rng rng(1);
  const napprox::NApproxHog napproxHog;

  // --- Row 1: gradient vector -------------------------------------------
  // The TrueNorth filters (-1 0 1), (1 0 -1) and transposes produce
  // {Ix, -Ix, Iy, -Iy}; check Ix/Iy from the shared gradient operator on a
  // random image match the direct per-pixel expression of Figure 2.
  {
    vision::SyntheticPersonDataset synth;
    const vision::Image img = synth.positiveWindow(rng);
    const hog::GradientField field = hog::computeGradients(img);
    double maxErr = 0.0;
    for (int y = 1; y < img.height() - 1; ++y) {
      for (int x = 1; x < img.width() - 1; ++x) {
        const float ix = img.at(x + 1, y) - img.at(x - 1, y);  // P5 - P3
        const float iy = img.at(x, y - 1) - img.at(x, y + 1);  // P1 - P7
        maxErr = std::max(maxErr,
                          static_cast<double>(std::abs(field.gx(x, y) - ix)));
        maxErr = std::max(maxErr,
                          static_cast<double>(std::abs(field.gy(x, y) - iy)));
      }
    }
    std::printf("gradient vector: max |pattern-match - mask| = %.2g "
                "(exact by construction)\n", maxErr);
  }

  // --- Rows 2+3: angle and magnitude --------------------------------------
  {
    double maxAngleErr = 0.0, sumAngleErr = 0.0;
    double maxMagRelErr = 0.0, sumMagRelErr = 0.0;
    int count = 0;
    for (int t = 0; t < 20000; ++t) {
      const float ix = static_cast<float>(rng.uniform(-1, 1));
      const float iy = static_cast<float>(rng.uniform(-1, 1));
      const float mag = std::sqrt(ix * ix + iy * iy);
      if (mag < 0.15f) continue;
      const int k = napproxHog.bestDirection(ix, iy);
      if (k < 0) continue;
      double trueAngle = std::atan2(iy, ix) * 180.0 / M_PI;
      if (trueAngle < 0) trueAngle += 360.0;
      double err = std::abs(trueAngle - 20.0 * k);
      if (err > 180.0) err = 360.0 - err;
      maxAngleErr = std::max(maxAngleErr, err);
      sumAngleErr += err;
      const double rel =
          std::abs(napproxHog.projection(ix, iy, k) - mag) / mag;
      maxMagRelErr = std::max(maxMagRelErr, rel);
      sumMagRelErr += rel;
      ++count;
    }
    std::printf("gradient angle:  argmax comparison vs atan2 over %d "
                "gradients\n", count);
    std::printf("  mean error %.2f deg, max error %.2f deg "
                "(bound: half bin = 10 deg)\n",
                sumAngleErr / count, maxAngleErr);
    std::printf("gradient magnitude: inner product vs sqrt\n");
    std::printf("  mean relative error %.3f, max %.3f "
                "(bound: 1 - cos(10 deg) = %.3f)\n",
                sumMagRelErr / count, maxMagRelErr,
                1.0 - std::cos(10.0 * M_PI / 180.0));
  }

  // --- Row 4: histogram ----------------------------------------------------
  // Compare the 18-bin count histogram (folded to 9 unsigned bins) against
  // the conventional 9-bin magnitude-weighted histogram on synthetic cells.
  {
    hog::HogParams conventionalParams;  // 9 bins, weighted, bilinear
    const hog::HogExtractor conventional(conventionalParams);
    vision::SyntheticPersonDataset synth;
    std::vector<double> a, b;
    for (int i = 0; i < 40; ++i) {
      const vision::Image window = synth.positiveWindow(rng);
      for (int cy = 0; cy < 16; cy += 4) {
        for (int cx = 0; cx < 8; cx += 4) {
          const auto weighted =
              conventional.cellHistogram(window, cx * 8, cy * 8);
          const auto counted =
              napproxHog.cellHistogram(window, cx * 8, cy * 8);
          for (int k = 0; k < 9; ++k) {
            a.push_back(weighted[k]);
            b.push_back(counted[k] + counted[k + 9]);  // fold signed bins
          }
        }
      }
    }
    std::printf("histogram:       fold(18-bin count) vs 9-bin weighted, "
                "correlation = %.3f over %zu bin values\n",
                eval::pearsonCorrelation(a, b), a.size());
  }
  std::printf("\nAll four Table 1 primitives reproduce the conventional "
              "computation within their documented approximation bounds.\n");
  return 0;
}
