// Ablation A2: histogram design choices separating classic HoG from the
// NApprox remapping (Table 1's last row): voting by magnitude vs by count,
// and 9 unsigned vs 18 signed orientation bins. Reported as SVM validation
// accuracy per configuration.
#include <cstdio>

#include "bench_common.hpp"
#include "hog/hog.hpp"
#include "svm/linear_svm.hpp"

namespace {

double svmValAccuracy(const pcnn::hog::HogExtractor& extractor,
                      const pcnn::bench::BenchDataset& data,
                      const std::vector<pcnn::vision::Image>& valWindows,
                      const std::vector<int>& valLabels) {
  using namespace pcnn;
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (const auto& w : data.trainPositives) {
    x.push_back(extractor.windowDescriptor(w));
    y.push_back(1);
  }
  for (const auto& w : data.trainNegatives) {
    x.push_back(extractor.windowDescriptor(w));
    y.push_back(-1);
  }
  svm::LinearSvm model;
  model.train(x, y);
  std::vector<std::vector<float>> vx;
  for (const auto& w : valWindows) vx.push_back(extractor.windowDescriptor(w));
  return model.accuracy(vx, valLabels);
}

}  // namespace

int main() {
  using namespace pcnn;
  std::printf("=== Ablation A2: histogram voting and bin layout ===\n\n");
  const bench::BenchDataset data = bench::makeBenchDataset(140, 0, 0, 0, 0, 88);
  vision::SyntheticPersonDataset synth;
  Rng rng(19);
  std::vector<vision::Image> valWindows;
  std::vector<int> valLabels;
  for (int i = 0; i < 100; ++i) {
    valWindows.push_back(synth.positiveWindow(rng));
    valLabels.push_back(1);
    valWindows.push_back(synth.negativeWindow(rng));
    valLabels.push_back(-1);
  }

  struct Config {
    const char* name;
    int bins;
    bool signedOrientation;
    bool weighted;
    bool bilinear;
  };
  const Config configs[] = {
      {"9 bins, weighted, bilinear (classic)", 9, false, true, true},
      {"9 bins, weighted, no interp", 9, false, true, false},
      {"9 bins, count, no interp", 9, false, false, false},
      {"18 bins, weighted, bilinear", 18, true, true, true},
      {"18 bins, count, no interp (NApprox-like)", 18, true, false, false},
  };

  std::printf("%-42s %12s\n", "configuration", "val accuracy");
  for (const Config& c : configs) {
    hog::HogParams params;
    params.numBins = c.bins;
    params.signedOrientation = c.signedOrientation;
    params.weightedVote = c.weighted;
    params.bilinearBinning = c.bilinear;
    const hog::HogExtractor extractor(params);
    std::printf("%-42s %12.3f\n", c.name,
                svmValAccuracy(extractor, data, valWindows, valLabels));
  }
  std::printf("\nExpected: count voting and dropped interpolation (the "
              "TrueNorth-friendly choices) cost little accuracy -- the basis "
              "of the paper's claim that NApprox features match classic "
              "HoG quality.\n");
  return 0;
}
