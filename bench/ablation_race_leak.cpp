// Ablation A4 (our design choice, documented in DESIGN.md): the NApprox
// corelet reads out the argmax with a leak ramp race after exact
// accumulation. The leak sets a fidelity/latency trade-off: a coarser leak
// shortens the race (fewer ticks per cell -> higher throughput per module)
// but buckets near-ties together, degrading agreement with the exact
// argmax. This bench sweeps the leak and reports race length, throughput
// at 1 ms ticks, and correlation of the tick-accurate model against the
// analytic (exact-tie) model on dataset cells.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "eval/stats.hpp"
#include "napprox/quantized.hpp"
#include "vision/synth.hpp"

int main() {
  using namespace pcnn;
  std::printf("=== Ablation A4: ramp-race leak sweep ===\n\n");
  std::printf("%6s %12s %14s %18s\n", "leak", "race ticks",
              "cells/s/module", "corr vs analytic");

  vision::SyntheticPersonDataset dataset;
  for (int leak : {1, 2, 4, 8, 16, 32, 64, 128}) {
    napprox::QuantizedParams quant;
    quant.rampLeak = leak;
    const napprox::QuantizedNApproxHog tick(
        {}, quant, napprox::QuantizedMode::kTickAccurate);
    const napprox::QuantizedNApproxHog analytic(
        {}, quant, napprox::QuantizedMode::kAnalytic);

    Rng rng(13);
    std::vector<double> a, b;
    for (int i = 0; i < 10; ++i) {
      const vision::Image window = dataset.positiveWindow(rng);
      for (int cy : {4, 8, 12}) {
        for (int cx : {8, 24, 40}) {
          const auto ha = tick.cellHistogram(window, cx, cy * 8);
          const auto hb = analytic.cellHistogram(window, cx, cy * 8);
          for (std::size_t k = 0; k < ha.size(); ++k) {
            a.push_back(ha[k]);
            b.push_back(hb[k]);
          }
        }
      }
    }
    const int raceTicks = tick.cutoffBucket();
    const double cellsPerSecond =
        1000.0 / static_cast<double>(quant.spikeWindow + raceTicks + 20);
    std::printf("%6d %12d %14.2f %18.4f\n", leak, raceTicks, cellsPerSecond,
                eval::pearsonCorrelation(a, b));
  }
  std::printf("\nExpected: correlation stays ~1 for fine leaks and drops as "
              "bucketing coarsens, while throughput rises -- the paper's "
              "15 cells/s module sits on the same latency/precision "
              "trade-off curve.\n");
  return 0;
}
