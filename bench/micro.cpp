// Microbenchmarks (google-benchmark): raw throughput of every substrate --
// the numbers a systems integrator needs to budget a deployment of this
// library (cells/s per software thread, simulator ticks/s, classifier
// inferences/s).
#include <benchmark/benchmark.h>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/detector.hpp"
#include "extract/registry.hpp"
#include "vision/sliding_window.hpp"
#include "hog/cell_kernels.hpp"
#include "hog/fixed_point.hpp"
#include "hog/gradient.hpp"
#include "hog/hog.hpp"
#include "napprox/corelet.hpp"
#include "napprox/napprox.hpp"
#include "napprox/quantized.hpp"
#include "parrot/parrot.hpp"
#include "svm/linear_svm.hpp"
#include "tn/network.hpp"
#include "vision/synth.hpp"

// The legacy-vs-cached comparison deliberately drives the deprecated
// brute-force scan.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace {

using namespace pcnn;

const vision::Image& testWindow() {
  static const vision::Image window = [] {
    vision::SyntheticPersonDataset synth;
    Rng rng(1);
    return synth.positiveWindow(rng);
  }();
  return window;
}

void BM_ClassicHogWindow(benchmark::State& state) {
  const hog::HogExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.windowDescriptor(testWindow()));
  }
  state.SetItemsProcessed(state.iterations() * 128);  // cells per window
}
BENCHMARK(BM_ClassicHogWindow);

void BM_FixedPointHogWindow(benchmark::State& state) {
  const hog::FixedPointHog extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.windowDescriptor(testWindow()));
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_FixedPointHogWindow);

// --- Cell-kernel layer: scalar reference vs batched SoA row kernels -----
// (src/hog/cell_kernels.*), one whole 320x240 grid per iteration. Arg 0
// runs the scalar per-pixel loops, Arg 1 the batched kernels (which the
// dynamic linker further specializes to the best target_clones variant --
// see the simd_level field of BENCH_detect.json for what that resolved to).

const vision::Image& kernelScene() {
  static const vision::Image scene = [] {
    vision::SyntheticPersonDataset synth;
    Rng rng(23);
    return synth.scene(rng, 320, 240, 1).image;
  }();
  return scene;
}

void BM_HogCellKernel(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  const hog::HogParams params;
  const hog::GradientField field = hog::computeGradients(kernelScene());
  hog::CellGrid grid;
  grid.cellsX = kernelScene().width() / params.cellSize;
  grid.cellsY = kernelScene().height() / params.cellSize;
  grid.bins = params.numBins;
  for (auto _ : state) {
    grid.data.assign(static_cast<std::size_t>(grid.cellsX) * grid.cellsY *
                         grid.bins,
                     0.0f);
    if (batched) {
      hog::kernels::hogCellRowsBatched(field, params, grid, 0, grid.cellsY);
    } else {
      hog::kernels::hogCellRowsScalar(field, params, grid, 0, grid.cellsY);
    }
    benchmark::DoNotOptimize(grid.data.data());
  }
  state.SetLabel(batched ? "batched" : "scalar");
  state.SetItemsProcessed(state.iterations() * grid.cellsX * grid.cellsY);
}
BENCHMARK(BM_HogCellKernel)->Arg(0)->Arg(1);

void BM_FixedCellKernel(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  const hog::FixedPointHog model;
  const std::vector<std::int32_t> pix =
      hog::kernels::quantizePixels(kernelScene(), model.params().pixelBits);
  const int w = kernelScene().width();
  const int h = kernelScene().height();
  hog::FixedPointHog::IntCellGrid grid;
  grid.cellsX = w / model.params().cellSize;
  grid.cellsY = h / model.params().cellSize;
  grid.bins = model.params().numBins;
  for (auto _ : state) {
    grid.data.assign(static_cast<std::size_t>(grid.cellsX) * grid.cellsY *
                         grid.bins,
                     0);
    if (batched) {
      hog::kernels::fixedCellRowsBatched(model, pix.data(), w, h, grid, 0,
                                         grid.cellsY);
    } else {
      hog::kernels::fixedCellRowsScalar(model, pix.data(), w, h, grid, 0,
                                        grid.cellsY);
    }
    benchmark::DoNotOptimize(grid.data.data());
  }
  state.SetLabel(batched ? "batched" : "scalar");
  state.SetItemsProcessed(state.iterations() * grid.cellsX * grid.cellsY);
}
BENCHMARK(BM_FixedCellKernel)->Arg(0)->Arg(1);

void BM_NApproxFpCell(benchmark::State& state) {
  const napprox::NApproxHog extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.cellHistogram(testWindow(), 24, 48));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NApproxFpCell);

void BM_NApproxQuantizedCell_Analytic(benchmark::State& state) {
  const napprox::QuantizedNApproxHog extractor(
      {}, {}, napprox::QuantizedMode::kAnalytic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.cellHistogram(testWindow(), 24, 48));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NApproxQuantizedCell_Analytic);

void BM_NApproxQuantizedCell_TickAccurate(benchmark::State& state) {
  const napprox::QuantizedNApproxHog extractor(
      {}, {}, napprox::QuantizedMode::kTickAccurate);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.cellHistogram(testWindow(), 24, 48));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NApproxQuantizedCell_TickAccurate);

void BM_NApproxCoreletCell(benchmark::State& state) {
  const napprox::QuantizedNApproxHog model(
      {}, {}, napprox::QuantizedMode::kTickAccurate);
  napprox::NApproxCorelet corelet(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(corelet.extract(testWindow(), 24, 48));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NApproxCoreletCell);

void BM_ParrotInferCell(benchmark::State& state) {
  parrot::ParrotHog extractor;
  std::vector<float> patch(100, 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.infer(patch));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParrotInferCell);

void BM_TnNetworkTick(benchmark::State& state) {
  // A busy 8-core network with dense random wiring and steady input.
  tn::Network net(7);
  Rng rng(7);
  for (int c = 0; c < 8; ++c) net.addCore();
  for (int c = 0; c < 8; ++c) {
    tn::Core& core = net.core(c);
    for (int a = 0; a < 256; ++a) core.setAxonType(a, a % 4);
    for (int n = 0; n < 256; ++n) {
      core.neuron(n).synapticWeights = {1, -1, 2, -2};
      core.neuron(n).threshold = 4;
      core.neuron(n).resetMode = tn::ResetMode::kLinear;
      core.neuron(n).floorPotential = -64;
      core.neuron(n).dest = tn::Destination{(c + 1) % 8,
                                            rng.uniformInt(0, 255), 1};
    }
    for (int i = 0; i < 4096; ++i) {
      core.setConnection(rng.uniformInt(0, 255), rng.uniformInt(0, 255),
                         true);
    }
  }
  for (int a = 0; a < 64; ++a) net.scheduleInput(0, 0, a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.run(1));
  }
  state.SetItemsProcessed(state.iterations() * 8);  // core-ticks
}
BENCHMARK(BM_TnNetworkTick);

// Dense vs event engine over a sparse workload: 32 cores, input bursts on
// only 4 of them, cross-core routing with mixed delays, and a quiet tail.
// The dense engine ticks 32 cores x 64 ticks per run; the event engine
// only the cores a spike can actually reach each tick.
void BM_TnRun(benchmark::State& state) {
  const bool event = state.range(0) != 0;
  tn::Network net(7);
  Rng rng(7);
  for (int c = 0; c < 32; ++c) net.addCore();
  for (int c = 0; c < 32; ++c) {
    tn::Core& core = net.core(c);
    for (int a = 0; a < 256; ++a) core.setAxonType(a, a % 4);
    for (int i = 0; i < 2048; ++i) {
      core.setConnection(rng.uniformInt(0, 255), rng.uniformInt(0, 255),
                         true);
    }
    for (int n = 0; n < 256; ++n) {
      core.neuron(n).synapticWeights = {1, -1, 2, -2};
      core.neuron(n).threshold = 6;
      core.neuron(n).resetMode = tn::ResetMode::kLinear;
      core.neuron(n).floorPotential = -64;
      if (n % 2 == 0) {
        core.neuron(n).dest =
            tn::Destination{(c + 1) % 32, rng.uniformInt(0, 255),
                            1 + (n % tn::kMaxDelayTicks)};
      }
    }
  }
  net.setEngine(event ? tn::EngineKind::kEvent : tn::EngineKind::kDense);
  for (auto _ : state) {
    net.reset(true);
    for (int a = 0; a < 32; ++a) net.scheduleInput(0, a % 4, a);
    benchmark::DoNotOptimize(net.run(64));
  }
  state.SetLabel(event ? "event" : "dense");
  state.SetItemsProcessed(state.iterations() * 64);  // ticks
}
BENCHMARK(BM_TnRun)->Arg(0)->Arg(1);

// --- Full-frame detection: legacy per-window recomputation vs cached -----
// per-level cell grids (GridDetector), across thread counts. Same 640x480
// synthetic scene, classic HoG block descriptors, 8-px stride.

const vision::Image& benchScene() {
  static const vision::Image scene = [] {
    vision::SyntheticPersonDataset synth;
    Rng rng(42);
    return synth.scene(rng, 640, 480, 2).image;
  }();
  return scene;
}

float benchScore(const std::vector<float>& f) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < f.size(); ++i) {
    acc += (i % 2 == 0 ? 1.0f : -1.0f) * f[i];
  }
  return acc;
}

void BM_DetectFullFrame_LegacyPerWindow(benchmark::State& state) {
  setThreadCount(static_cast<int>(state.range(0)));
  const hog::HogExtractor extractor;
  vision::SlidingWindowParams scan;
  long kept = 0;
  for (auto _ : state) {
    vision::forEachWindow(
        benchScene(), scan,
        [&](const vision::Image& level, const vision::Rect& inLevel,
            const vision::Rect&) {
          const vision::Image window = level.crop(
              static_cast<int>(inLevel.x), static_cast<int>(inLevel.y),
              static_cast<int>(inLevel.w), static_cast<int>(inLevel.h));
          if (benchScore(extractor.windowDescriptor(window)) > 1e9f) ++kept;
        });
  }
  benchmark::DoNotOptimize(kept);
  state.SetItemsProcessed(state.iterations() *
                          vision::countWindows(benchScene(), scan));
}
BENCHMARK(BM_DetectFullFrame_LegacyPerWindow)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_DetectFullFrame_CachedGrid(benchmark::State& state) {
  setThreadCount(static_cast<int>(state.range(0)));
  core::GridDetectorParams params;
  params.scoreThreshold = 1e9f;
  const core::GridDetector detector(
      params,
      extract::makeExtractor("hog", extract::FeatureLayout::kBlockNorm),
      benchScore);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detectRaw(benchScene()));
  }
  state.SetItemsProcessed(
      state.iterations() *
      vision::countWindows(benchScene(), vision::SlidingWindowParams{}));
}
BENCHMARK(BM_DetectFullFrame_CachedGrid)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_SvmDecision7560(benchmark::State& state) {
  // Decision cost at the paper's descriptor width.
  svm::LinearSvm model;
  Rng rng(9);
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (int i = 0; i < 8; ++i) {
    std::vector<float> f(7560);
    for (auto& v : f) {
      v = static_cast<float>(rng.uniform()) + (i % 2 == 0 ? 0.2f : -0.2f);
    }
    x.push_back(std::move(f));
    y.push_back(i % 2 == 0 ? 1 : -1);
  }
  model.train(x, y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.decision(x[0]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SvmDecision7560);

}  // namespace

#pragma GCC diagnostic pop
