// Figure 5: miss-rate / false-positive curves with *Eedn* classifiers for
// NApprox HoG and Parrot HoG (32-spike stochastic coding), plus the
// Absorbed monolithic network check of Section 5.1. Block normalization is
// elided (costly on TrueNorth), so the classifier consumes flat cell
// histograms. Expected shape (paper): NApprox and Parrot curves are very
// similar despite divergent resource usage; the Absorbed network makes
// blind (all-positive or all-negative) decisions.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "napprox/napprox.hpp"
#include "parrot/parrot.hpp"

namespace {

using pcnn::vision::Image;

pcnn::eedn::EednClassifierConfig classifierConfig(std::uint64_t seed) {
  pcnn::eedn::EednClassifierConfig config;
  config.inputSize = 8 * 16 * 18;  // flat cell features, no block norm
  config.groupInputSize = 126;
  config.outputsPerGroup = 12;
  config.hiddenWidths = {120};
  config.outputPopulation = 8;
  config.inputScale = 1.0f / 64.0f;  // cell votes arrive as spike rates
  config.seed = seed;
  return config;
}

void runPipeline(const std::string& name,
                 const pcnn::core::WindowExtractorFn& extract,
                 const pcnn::core::BatchExtractorFn& extractBatch,
                 const pcnn::core::GridExtractor& grid,
                 const pcnn::bench::BenchDataset& data, long extractorCores,
                 int paperExtractorCores, int featureResamples = 1) {
  using namespace pcnn;
  core::PartitionedPipeline pipeline(extract, extractBatch,
                                     classifierConfig(5));

  // Stochastic extractors (the spike-coded parrot) produce a fresh noise
  // realization per extraction; training on several realizations per
  // window keeps the classifier from overfitting one draw.
  std::vector<Image> windows;
  std::vector<int> labels;
  for (int rep = 0; rep < featureResamples; ++rep) {
    for (const auto& w : data.trainPositives) {
      windows.push_back(w);
      labels.push_back(1);
    }
    for (const auto& w : data.trainNegatives) {
      windows.push_back(w);
      labels.push_back(-1);
    }
  }
  pipeline.trainClassifier(windows, labels, 40, 0.05f);
  const double trainAcc = pipeline.evalAccuracy(windows, labels);

  core::GridDetectorParams params;
  params.scoreThreshold = -3.0f;
  auto& classifier = pipeline.classifier();
  core::GridDetector detector(
      params, grid, core::cellFeatureAssembler(8, 16),
      [&classifier](const std::vector<float>& f) {
        return classifier.score(f);
      });
  const auto results = bench::evaluateDetector(detector, data.testScenes);

  std::printf("[%s] train accuracy %.3f; extractor cores: %ld per window "
              "(paper: %d), classifier cores: %ld (paper: 2864)\n",
              name.c_str(), trainAcc, extractorCores, paperExtractorCores,
              pipeline.classifier().coreCountEstimate());
  bench::printCurve("miss rate vs FPPI (" + name + " + Eedn)",
                    eval::missRateCurve(results));
}

}  // namespace

int main() {
  using namespace pcnn;
  std::printf("=== Figure 5: Eedn classifiers on NApprox vs Parrot vs "
              "Absorbed ===\n\n");
  const bench::BenchDataset data =
      bench::makeBenchDataset(110, 0, 8, 288, 224, 55);

  // --- NApprox + Eedn -----------------------------------------------------
  const auto napproxHog = std::make_shared<napprox::NApproxHog>();
  runPipeline(
      "NApprox HoG",
      [napproxHog](const Image& w) { return napproxHog->cellDescriptor(w); },
      [napproxHog](const std::vector<Image>& ws) {
        return napproxHog->cellDescriptorBatch(ws);
      },
      [napproxHog](const Image& img) { return napproxHog->computeCells(img); },
      data, 20 * 128, 26 * 128);

  // --- Parrot (32-spike stochastic coding) + Eedn -------------------------
  auto parrotHog = std::make_shared<parrot::ParrotHog>([] {
    parrot::ParrotConfig config;
    config.seed = 2017;
    return config;
  }());
  {
    const parrot::OrientedSampleGenerator generator;
    std::printf("training parrot extractor (stage A of co-training)...\n");
    parrotHog->train(generator, 4000, 16, 0.005f);
    std::printf("parrot validation MSE: %.4f, dominant-bin accuracy %.3f\n\n",
                parrotHog->validate(generator, 300),
                parrotHog->dominantBinAccuracy(generator, 300));
    parrotHog->setInputSpikes(32);
  }
  runPipeline(
      "Parrot HoG (32-spike)",
      [parrotHog](const Image& w) { return parrotHog->cellDescriptor(w); },
      [parrotHog](const std::vector<Image>& ws) {
        return parrotHog->cellDescriptorBatch(ws);
      },
      [parrotHog](const Image& img) { return parrotHog->computeCells(img); },
      data, static_cast<long>(parrotHog->mappedCoresPerCell()) * 128,
      8 * 128, /*featureResamples=*/3);

  // --- Absorbed monolithic network (Sec. 5.1 check) -----------------------
  {
    std::printf("[Absorbed] monolithic pixels-to-decision Eedn network, "
                "combined resource budget (paper: 3888 cores)\n");
    core::ResourceBudget budget;
    auto absorbed = core::makeAbsorbedClassifier(budget);
    std::printf("  absorbed core estimate (our accounting): %ld\n",
                absorbed->coreCountEstimate());

    eedn::BinaryDataset train;
    for (const auto& w : data.trainPositives) {
      train.features.push_back(core::rawPixelFeatures(w));
      train.labels.push_back(1);
    }
    for (const auto& w : data.trainNegatives) {
      train.features.push_back(core::rawPixelFeatures(w));
      train.labels.push_back(-1);
    }
    for (int epoch = 0; epoch < 30; ++epoch) {
      absorbed->trainEpoch(train, 0.05f);
    }
    std::printf("  train accuracy:       %.3f\n",
                absorbed->evalAccuracy(train));
    std::printf("  blind-decision rate:  %.3f (1.0 = always the same "
                "class, the degenerate behaviour the paper reports)\n\n",
                absorbed->blindDecisionRate(train));
  }

  std::printf("Expected shape (paper): NApprox and Parrot curves nearly "
              "coincide; Absorbed collapses to blind decisions.\n");
  return 0;
}
