// Figure 5: miss-rate / false-positive curves with *Eedn* classifiers for
// NApprox HoG and Parrot HoG (32-spike stochastic coding), plus the
// Absorbed monolithic network check of Section 5.1. Block normalization is
// elided (costly on TrueNorth), so the classifier consumes flat cell
// histograms. Expected shape (paper): NApprox and Parrot curves are very
// similar despite divergent resource usage; the Absorbed network makes
// blind (all-positive or all-negative) decisions.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "extract/registry.hpp"

namespace {

using pcnn::vision::Image;

pcnn::eedn::EednClassifierConfig classifierConfig(std::uint64_t seed) {
  pcnn::eedn::EednClassifierConfig config;
  config.inputSize = 8 * 16 * 18;  // flat cell features, no block norm
  config.groupInputSize = 126;
  config.outputsPerGroup = 12;
  config.hiddenWidths = {120};
  config.outputPopulation = 8;
  config.inputScale = 1.0f / 64.0f;  // cell votes arrive as spike rates
  config.seed = seed;
  return config;
}

void runSpec(const std::string& spec, const pcnn::bench::BenchDataset& data) {
  using namespace pcnn;
  extract::ExtractorOptions options;
  options.layout = extract::FeatureLayout::kFlatCell;
  options.seed = 2017;
  const auto extractor = extract::makeExtractor(spec, options);

  // Stage A of the co-training: trainable extractors (the parrot) learn to
  // mimic the NApprox teacher on generated oriented samples; fixed-function
  // extractors no-op.
  std::printf("[%s] pretraining extractor (stage A of co-training)...\n",
              spec.c_str());
  extractor->pretrain(4000, 16, 0.005f);

  core::PartitionedPipeline pipeline(extractor, classifierConfig(5));

  // Stochastic extractors (the spike-coded parrot) produce a fresh noise
  // realization per extraction; training on several realizations per
  // window keeps the classifier from overfitting one draw.
  const auto info = extractor->info();
  const int featureResamples =
      info.coding == extract::CodingScheme::kStochasticStream ? 3 : 1;
  std::vector<Image> windows;
  std::vector<int> labels;
  for (int rep = 0; rep < featureResamples; ++rep) {
    for (const auto& w : data.trainPositives) {
      windows.push_back(w);
      labels.push_back(1);
    }
    for (const auto& w : data.trainNegatives) {
      windows.push_back(w);
      labels.push_back(-1);
    }
  }
  pipeline.trainClassifier(windows, labels, 40, 0.05f);
  const double trainAcc = pipeline.evalAccuracy(windows, labels);

  core::GridDetectorParams params;
  params.scoreThreshold = -3.0f;
  auto& classifier = pipeline.classifier();
  core::GridDetector detector(params, extractor,
                              [&classifier](const std::vector<float>& f) {
                                return classifier.score(f);
                              });
  const auto results = bench::evaluateDetector(detector, data.testScenes);

  // Sec. 5.1 core accounting straight from the extractor's metadata.
  const auto budget = core::makeResourceBudget(info);
  const long cells = budget.cellsPerWindow();
  std::printf("[%s] train accuracy %.3f; extractor cores: %ld per window "
              "(paper: %ld), classifier cores: %ld (paper: %d)\n",
              spec.c_str(), trainAcc,
              static_cast<long>(info.coresPerCell) * cells,
              static_cast<long>(budget.parrotExtractorCores()),
              pipeline.classifier().coreCountEstimate(),
              budget.classifierCores);
  bench::printCurve("miss rate vs FPPI (" + spec + " + Eedn)",
                    eval::missRateCurve(results));
}

}  // namespace

int main() {
  using namespace pcnn;
  std::printf("=== Figure 5: Eedn classifiers on NApprox vs Parrot vs "
              "Absorbed ===\n\n");
  const bench::BenchDataset data =
      bench::makeBenchDataset(110, 0, 8, 288, 224, 55);

  // Fig. 5's two partitioned pipelines, as registry specs over flat cell
  // features: float NApprox and the 32-spike stochastically-coded parrot.
  for (const std::string spec : {"napprox", "parrot:32spike"}) {
    runSpec(spec, data);
  }

  // --- Absorbed monolithic network (Sec. 5.1 check) -----------------------
  {
    std::printf("[Absorbed] monolithic pixels-to-decision Eedn network, "
                "combined resource budget (paper: 3888 cores)\n");
    core::ResourceBudget budget;
    auto absorbed = core::makeAbsorbedClassifier(budget);
    std::printf("  absorbed core estimate (our accounting): %ld\n",
                absorbed->coreCountEstimate());

    eedn::BinaryDataset train;
    for (const auto& w : data.trainPositives) {
      train.features.push_back(core::rawPixelFeatures(w));
      train.labels.push_back(1);
    }
    for (const auto& w : data.trainNegatives) {
      train.features.push_back(core::rawPixelFeatures(w));
      train.labels.push_back(-1);
    }
    for (int epoch = 0; epoch < 30; ++epoch) {
      absorbed->trainEpoch(train, 0.05f);
    }
    std::printf("  train accuracy:       %.3f\n",
                absorbed->evalAccuracy(train));
    std::printf("  blind-decision rate:  %.3f (1.0 = always the same "
                "class, the degenerate behaviour the paper reports)\n\n",
                absorbed->blindDecisionRate(train));
  }

  std::printf("Expected shape (paper): NApprox and Parrot curves nearly "
              "coincide; Absorbed collapses to blind decisions.\n");
  return 0;
}
