// Closed-loop serving benchmark: synthetic Poisson traffic against
// serve::DetectionService across offered-load points (below, near, and
// past the measured service capacity). Reports per-point p50/p99 client
// latency, delivered throughput, and the shed/degrade rates the admission
// ladder produced; writes BENCH_serve.json on the shared provenance
// schema.
//
// Usage: bench_serve [outputPath] [requestsPerPoint] [width] [height]
//                    [smoke]
//   (the ci.sh smoke runs "bench_serve /tmp/out.json 40 320 240 smoke",
//    which keeps only the overloaded point -- the one that must show
//    nonzero rejected + degraded work.)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/detector.hpp"
#include "extract/registry.hpp"
#include "obs/obs.hpp"
#include "serve/service.hpp"
#include "vision/video.hpp"

namespace {

using namespace pcnn;
using Clock = std::chrono::steady_clock;

std::function<float(const std::vector<float>&)> randomScorer(int dim) {
  std::vector<float> weights(static_cast<std::size_t>(dim));
  Rng wrng(7);
  for (auto& w : weights) w = static_cast<float>(wrng.uniform()) - 0.5f;
  return [weights = std::move(weights)](const std::vector<float>& f) {
    float acc = 0.0f;
    const std::size_t n = f.size() < weights.size() ? f.size() : weights.size();
    for (std::size_t i = 0; i < n; ++i) acc += weights[i] * f[i];
    return acc;
  };
}

std::shared_ptr<core::GridDetector> makeDetector() {
  auto extractor =
      extract::makeExtractor("hog", extract::FeatureLayout::kBlockNorm);
  core::GridDetectorParams params;
  params.scoreThreshold = 2.0f;
  params.pyramid.maxLevels = 2;
  // Per-frame cost must be stable for the offered-load sweep to mean
  // anything, so cross-frame reuse is off: every request pays full price.
  params.temporal.enabled = false;
  return std::make_shared<core::GridDetector>(
      params, extractor, randomScorer(extractor->featureDim()));
}

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

struct PointResult {
  double offeredFps = 0.0;
  int requested = 0;
  long completed = 0;  ///< served OK
  long rejected = 0;   ///< refused at admission
  long expired = 0;    ///< dropped past deadline
  long degraded = 0;   ///< served below full quality
  int maxLevel = 0;    ///< deepest ladder rung observed
  long transitions = 0;
  double p50Ms = 0.0;
  double p99Ms = 0.0;
  double throughputFps = 0.0;
  double shedRate = 0.0;
  double degradeRate = 0.0;
};

PointResult runPoint(const vision::Image& frame, double offeredFps,
                     double deadlineMs, int requests, Rng& rng) {
  // Fresh service (and detector) per point: each point starts at full
  // quality with empty queues, so points are independent measurements.
  serve::ServiceParams params;
  params.readEnv = false;
  params.queueCapacity = 8;
  params.maxBatch = 2;
  params.deadlineMs = deadlineMs;
  serve::DetectionService service(params, makeDetector());

  PointResult point;
  point.offeredFps = offeredFps;
  point.requested = requests;
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(static_cast<std::size_t>(requests));

  const auto start = Clock::now();
  double nextArrivalUs = 0.0;
  for (int i = 0; i < requests; ++i) {
    // Poisson process: exponential inter-arrival at the offered rate.
    const double u = rng.uniform();
    nextArrivalUs += -std::log(1.0 - u) * 1e6 / offeredFps;
    const auto arrival = start + std::chrono::microseconds(
                                     static_cast<long long>(nextArrivalUs));
    std::this_thread::sleep_until(arrival);
    auto admitted = service.submit(frame);
    if (!admitted.ok()) {
      ++point.rejected;
    } else {
      futures.push_back(std::move(admitted.value()));
    }
    point.maxLevel = std::max(point.maxLevel, service.stats().level);
  }

  std::vector<double> latenciesMs;
  for (auto& future : futures) {
    serve::Response response = future.get();
    if (response.status.code() == StatusCode::kDeadlineExceeded) {
      ++point.expired;
      continue;
    }
    if (!response.status.ok()) {
      ++point.rejected;
      continue;
    }
    ++point.completed;
    if (response.servedAt != serve::ServiceLevel::kFull ||
        response.degradation.degraded()) {
      ++point.degraded;
    }
    latenciesMs.push_back((response.queueUs + response.detectUs) * 1e-3);
  }
  const double wallS =
      std::chrono::duration<double>(Clock::now() - start).count();
  point.maxLevel = std::max(point.maxLevel, service.stats().level);
  point.transitions = service.stats().transitions;
  point.p50Ms = quantile(latenciesMs, 0.50);
  point.p99Ms = quantile(latenciesMs, 0.99);
  point.throughputFps =
      wallS > 0.0 ? static_cast<double>(point.completed) / wallS : 0.0;
  point.shedRate = static_cast<double>(point.rejected + point.expired) /
                   static_cast<double>(requests);
  point.degradeRate =
      point.completed > 0
          ? static_cast<double>(point.degraded) /
                static_cast<double>(point.completed)
          : 0.0;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outPath = argc > 1 ? argv[1] : "BENCH_serve.json";
  const int requests = argc > 2 ? std::atoi(argv[2]) : 60;
  const int width = argc > 3 ? std::atoi(argv[3]) : 320;
  const int height = argc > 4 ? std::atoi(argv[4]) : 240;
  const bool smoke = argc > 5 && std::string(argv[5]) == "smoke";

  bench::printProvenance();

  vision::VideoParams vp;
  vp.width = width;
  vp.height = height;
  vp.numPersons = 1;
  vp.seed = 41;
  const vision::Image frame = vision::SyntheticVideo(vp).frame(0).image;

  // Measure the unloaded service time to anchor the offered-load sweep.
  auto probe = makeDetector();
  probe->detect(frame);  // warm-up (allocations, dispatch resolution)
  const auto t0 = Clock::now();
  constexpr int kProbeRuns = 3;
  for (int i = 0; i < kProbeRuns; ++i) probe->detect(frame);
  const double baseMs =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count() /
      kProbeRuns;
  const double capacityFps = baseMs > 0.0 ? 1000.0 / baseMs : 1000.0;
  // Generous relative to one service time: the log2-bucket p99 the ladder
  // consumes overestimates by up to 2x at bucket edges, and the budget
  // must leave room for ordinary Poisson queueing before the latency
  // signal (0.9 * deadline) starts shedding quality.
  const double deadlineMs = 6.0 * baseMs;
  std::printf("base service time %.2f ms (~%.1f fps capacity), deadline %.1f ms\n",
              baseMs, capacityFps, deadlineMs);

  // Below capacity, just past it, and a heavy overload. The overload must
  // exceed even the *degraded* service capacity (the coarse rungs are
  // several times cheaper than full quality), so the ladder is driven all
  // the way to the reject rung and the point shows sustained admission
  // rejection, not just a transient. That point is the contract: nonzero
  // rejected + degraded work.
  std::vector<double> loadFactors =
      smoke ? std::vector<double>{6.0} : std::vector<double>{0.5, 1.5, 6.0};

  Rng rng(17);
  std::vector<PointResult> points;
  for (double factor : loadFactors) {
    PointResult p = runPoint(frame, factor * capacityFps, deadlineMs,
                             requests, rng);
    std::printf(
        "offered %7.1f fps: completed %ld rejected %ld expired %ld "
        "degraded %ld | p50 %.1f ms p99 %.1f ms | %.1f fps delivered | "
        "shed %.0f%% degrade %.0f%% max_level %d\n",
        p.offeredFps, p.completed, p.rejected, p.expired, p.degraded,
        p.p50Ms, p.p99Ms, p.throughputFps, 100.0 * p.shedRate,
        100.0 * p.degradeRate, p.maxLevel);
    points.push_back(p);
  }

  std::FILE* out = std::fopen(outPath.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"serve\",\n");
  std::fprintf(out, "  \"provenance\": %s,\n",
               bench::provenanceJson().c_str());
  std::fprintf(out, "  \"scene\": {\"width\": %d, \"height\": %d},\n", width,
               height);
  std::fprintf(out, "  \"requests_per_point\": %d,\n", requests);
  std::fprintf(out, "  \"base_service_ms\": %.3f,\n", baseMs);
  std::fprintf(out, "  \"deadline_ms\": %.3f,\n", deadlineMs);
  std::fprintf(out, "  \"queue_capacity\": 8,\n");
  std::fprintf(out, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    std::fprintf(
        out,
        "    {\"offered_fps\": %.2f, \"requested\": %d, \"completed\": %ld, "
        "\"rejected\": %ld, \"expired\": %ld, \"degraded\": %ld, "
        "\"max_level\": %d, \"transitions\": %ld, \"p50_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"throughput_fps\": %.2f, \"shed_rate\": %.4f, "
        "\"degrade_rate\": %.4f}%s\n",
        p.offeredFps, p.requested, p.completed, p.rejected, p.expired,
        p.degraded, p.maxLevel, p.transitions, p.p50Ms, p.p99Ms,
        p.throughputFps, p.shedRate, p.degradeRate,
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", outPath.c_str());
  return 0;
}
