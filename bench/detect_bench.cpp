// Full-frame detection benchmark: the cost of scanning one 640x480 scene
// with the classic HoG + linear scorer at an 8-px stride, comparing
//   (a) the legacy path -- crop every window and recompute its descriptor
//       from pixels (each cell recomputed by up to 64 overlapping windows),
//   (b) the cached-grid path -- one cell grid per pyramid level, windows
//       assembled by slicing it (GridDetector), at 1/2/4 threads,
//   (c) the cached-grid path for every registered extractor backend on a
//       smaller scene (the registry walk -- one entry per backend).
// Emits BENCH_detect.json with wall times and speedups.
//
// Usage: bench_detect [outputPath] [repeats]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/detector.hpp"
#include "extract/registry.hpp"
#include "hog/hog.hpp"
#include "obs/obs.hpp"
#include "vision/sliding_window.hpp"
#include "vision/synth.hpp"

// This bench exists to measure the deprecated brute-force scan against the
// cached-grid path -- using it here is the point, not an oversight.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace {

using namespace pcnn;
using Clock = std::chrono::steady_clock;

double bestOfMs(int repeats, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < best) best = ms;
  }
  return best;
}

/// A fixed linear scorer of the given dimension; the benchmark measures
/// feature extraction, not classifier quality.
std::function<float(const std::vector<float>&)> randomScorer(int dim) {
  std::vector<float> weights(static_cast<std::size_t>(dim));
  Rng wrng(7);
  for (auto& w : weights) w = static_cast<float>(wrng.uniform()) - 0.5f;
  return [weights = std::move(weights)](const std::vector<float>& f) {
    float acc = 0.0f;
    const std::size_t n = f.size() < weights.size() ? f.size() : weights.size();
    for (std::size_t i = 0; i < n; ++i) acc += weights[i] * f[i];
    return acc;
  };
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outPath = argc > 1 ? argv[1] : "BENCH_detect.json";
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 3;
  const int sceneW = 640, sceneH = 480;

  bench::printProvenance();
  vision::SyntheticPersonDataset dataset;
  Rng rng(42);
  const vision::Image scene = dataset.scene(rng, sceneW, sceneH, 2).image;

  const hog::HogExtractor hog;
  const auto score = randomScorer(3780);  // 7x15x36-float window descriptor

  vision::SlidingWindowParams scan;  // 64x128 window, 8-px stride
  const long numWindows = vision::countWindows(scene, scan);
  std::printf("scene %dx%d, %ld windows at 8-px stride\n", sceneW, sceneH,
              numWindows);

  // (a) Legacy: per-window crop + descriptor recomputation, single thread.
  long legacyKept = 0;
  setThreadCount(1);
  const double legacyMs = bestOfMs(repeats, [&] {
    legacyKept = 0;
    vision::forEachWindow(
        scene, scan,
        [&](const vision::Image& level, const vision::Rect& inLevel,
            const vision::Rect&) {
          const vision::Image window = level.crop(
              static_cast<int>(inLevel.x), static_cast<int>(inLevel.y),
              static_cast<int>(inLevel.w), static_cast<int>(inLevel.h));
          if (score(hog.windowDescriptor(window)) > 1e9f) ++legacyKept;
        });
  });
  std::printf("legacy per-window, 1 thread:  %9.1f ms\n", legacyMs);

  // (b) Cached grids via GridDetector at 1/2/4 threads, same classic-HoG
  // features through the polymorphic extractor layer.
  core::GridDetectorParams params;
  params.scoreThreshold = 1e9f;  // score every window, keep (almost) none
  core::GridDetector detector(
      params, extract::makeExtractor("hog", extract::FeatureLayout::kBlockNorm),
      score);

  const int threadCounts[] = {1, 2, 4};
  double cachedMs[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    setThreadCount(threadCounts[i]);
    cachedMs[i] =
        bestOfMs(repeats, [&] { (void)detector.detectRaw(scene).size(); });
    std::printf("cached grid, %d thread%s:      %9.1f ms  (%.2fx vs legacy)\n",
                threadCounts[i], threadCounts[i] == 1 ? " " : "s",
                cachedMs[i], legacyMs / cachedMs[i]);
  }

  // (c) Registry walk: every backend through the same cached-grid scan on
  // a smaller scene (NApprox/Parrot cells cost far more than classic HoG).
  const int smallW = 320, smallH = 240;
  Rng smallRng(43);
  const vision::Image smallScene =
      dataset.scene(smallRng, smallW, smallH, 1).image;
  vision::SlidingWindowParams smallScan;
  smallScan.pyramid.maxLevels = 2;
  const long smallWindows = vision::countWindows(smallScene, smallScan);
  setThreadCount(1);
  std::printf("\nper-backend cached-grid scan, %dx%d scene, %ld windows, "
              "1 thread:\n",
              smallW, smallH, smallWindows);
  const auto names = extract::ExtractorRegistry::instance().names();
  std::vector<double> backendMs(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    auto extractor = extract::makeExtractor(
        names[i], extract::FeatureLayout::kBlockNorm);
    const auto backendScore = randomScorer(extractor->featureDim());
    core::GridDetectorParams bp;
    bp.scoreThreshold = 1e9f;
    bp.pyramid = smallScan.pyramid;
    core::GridDetector backendDetector(bp, extractor, backendScore);
    backendMs[i] = bestOfMs(
        repeats, [&] { (void)backendDetector.detectRaw(smallScene).size(); });
    std::printf("  %-12s %9.1f ms  (%d-dim features)\n", names[i].c_str(),
                backendMs[i], extractor->featureDim());
  }

  // (d) Bundle row: with PCNN_BUNDLE set, the same cached-grid scan with
  // the extractor reloaded from the bundle -- the deployment path, timed
  // against the in-process constructions above. The manifest identity also
  // lands in the provenance block (bench::provenanceJson).
  double bundleMs = -1.0;
  std::string bundleSpec;
  if (const std::optional<std::string> bundlePath = env::raw("PCNN_BUNDLE")) {
    StatusOr<std::shared_ptr<extract::FeatureExtractor>> loaded =
        extract::ExtractorRegistry::instance().tryLoadBundle(*bundlePath);
    if (loaded.ok()) {
      bundleSpec = loaded.value()->name();
      const auto bundleScore = randomScorer(loaded.value()->featureDim());
      core::GridDetectorParams bp;
      bp.scoreThreshold = 1e9f;
      bp.pyramid = smallScan.pyramid;
      core::GridDetector bundleDetector(bp, loaded.value(), bundleScore);
      bundleMs = bestOfMs(
          repeats, [&] { (void)bundleDetector.detectRaw(smallScene).size(); });
      std::printf("  %-12s %9.1f ms  (bundle-loaded %s)\n", "bundle",
                  bundleMs, bundleSpec.c_str());
    } else {
      std::fprintf(stderr, "PCNN_BUNDLE: %s\n",
                   loaded.status().toString().c_str());
    }
  }

  // (e) Obs overhead: the hog and fixedpoint rows again with metrics and
  // the flight recorder armed (counters, gauges, per-frame histograms and
  // ring writes all live), against the plain rows above. Guards the
  // documented <2% instrumentation budget (DESIGN.md 5c/5h) now that the
  // telemetry layer is continuous rather than exit-time only.
  struct OverheadRow {
    std::string name;
    double plainMs = 0.0;
    double obsMs = 0.0;
  };
  std::vector<OverheadRow> overhead;
  {
    const bool metricsWere = obs::metricsEnabled();
    const bool flightWere = obs::flightEnabled();
    // Back-to-back plain/armed measurement of the same detector with
    // extra repeats: at ~4 ms per scan, best-of-3 from section (c) has
    // more jitter than the budget being measured.
    const int overheadRepeats = repeats < 10 ? 10 : repeats;
    std::printf("\nobs overhead (metrics + flight recorder on):\n");
    for (const std::string target : {"hog", "fixedpoint"}) {
      for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] != target) continue;
        auto extractor = extract::makeExtractor(
            names[i], extract::FeatureLayout::kBlockNorm);
        const auto backendScore = randomScorer(extractor->featureDim());
        core::GridDetectorParams bp;
        bp.scoreThreshold = 1e9f;
        bp.pyramid = smallScan.pyramid;
        core::GridDetector backendDetector(bp, extractor, backendScore);
        OverheadRow row;
        row.name = names[i];
        obs::setMetricsEnabled(false);
        obs::setFlightEnabled(false);
        row.plainMs = bestOfMs(overheadRepeats, [&] {
          (void)backendDetector.detectRaw(smallScene).size();
        });
        obs::setMetricsEnabled(true);
        obs::setFlightEnabled(true);
        row.obsMs = bestOfMs(overheadRepeats, [&] {
          (void)backendDetector.detectRaw(smallScene).size();
        });
        std::printf("  %-12s %9.1f ms  (plain %9.1f ms, %+.2f%%)\n",
                    row.name.c_str(), row.obsMs, row.plainMs,
                    100.0 * (row.obsMs - row.plainMs) / row.plainMs);
        overhead.push_back(std::move(row));
      }
    }
    obs::setMetricsEnabled(metricsWere);
    obs::setFlightEnabled(flightWere);
  }

  std::FILE* out = std::fopen(outPath.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", outPath.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"scene\": [%d, %d],\n"
               "  \"stride_px\": 8,\n"
               "  \"window_px\": [64, 128],\n"
               "  \"windows_scanned\": %ld,\n"
               "  \"repeats\": %d,\n"
               "  \"provenance\": %s,\n"
               "  \"legacy_per_window_1t_ms\": %.2f,\n"
               "  \"cached_grid_1t_ms\": %.2f,\n"
               "  \"cached_grid_2t_ms\": %.2f,\n"
               "  \"cached_grid_4t_ms\": %.2f,\n"
               "  \"speedup_cached_1t\": %.2f,\n"
               "  \"speedup_cached_2t\": %.2f,\n"
               "  \"speedup_cached_4t\": %.2f,\n"
               "  \"extractor_scene\": [%d, %d],\n"
               "  \"extractor_windows_scanned\": %ld,\n"
               "  \"extractors\": {",
               sceneW, sceneH, numWindows, repeats,
               bench::provenanceJson().c_str(), legacyMs, cachedMs[0],
               cachedMs[1], cachedMs[2], legacyMs / cachedMs[0],
               legacyMs / cachedMs[1], legacyMs / cachedMs[2], smallW, smallH,
               smallWindows);
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::fprintf(out, "%s\n    \"%s\": {\"cached_grid_1t_ms\": %.2f}",
                 i == 0 ? "" : ",", names[i].c_str(), backendMs[i]);
  }
  std::fprintf(out, "\n  }");
  std::fprintf(out, ",\n  \"obs_overhead\": {");
  for (std::size_t i = 0; i < overhead.size(); ++i) {
    const OverheadRow& row = overhead[i];
    std::fprintf(out,
                 "%s\n    \"%s\": {\"plain_ms\": %.2f, \"obs_ms\": %.2f, "
                 "\"overhead_pct\": %.2f}",
                 i == 0 ? "" : ",", row.name.c_str(), row.plainMs, row.obsMs,
                 100.0 * (row.obsMs - row.plainMs) / row.plainMs);
  }
  std::fprintf(out, "\n  }");
  if (bundleMs >= 0.0) {
    std::fprintf(out,
                 ",\n  \"bundle\": {\"spec\": \"%s\", "
                 "\"cached_grid_1t_ms\": %.2f}",
                 bundleSpec.c_str(), bundleMs);
  }
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", outPath.c_str());

  // With PCNN_TRACE / PCNN_METRICS set, the run's spans and counter
  // snapshot land next to the bench output (they would also be written at
  // exit; doing it here makes the paths visible in the bench log).
  if (!obs::configuredTracePath().empty() ||
      !obs::configuredMetricsPath().empty()) {
    obs::writeConfiguredReports();
    std::printf("obs: trace=%s metrics=%s\n",
                obs::configuredTracePath().empty()
                    ? "(off)"
                    : obs::configuredTracePath().c_str(),
                obs::configuredMetricsPath().empty()
                    ? "(off)"
                    : obs::configuredMetricsPath().c_str());
  }
  return 0;
}

#pragma GCC diagnostic pop
