// Ablation A1: contrast (block) normalization on/off. Figure 4's HoG
// configurations "exploit contrast normalization over 2x2 cells in a
// block"; the Eedn experiments elide it because normalization is costly on
// TrueNorth (Sec. 5). This ablation quantifies what that elision costs:
// SVM window-classification accuracy with and without L2 block
// normalization, for the float HoG and the NApprox extractor.
#include <cstdio>

#include "bench_common.hpp"
#include "hog/hog.hpp"
#include "napprox/napprox.hpp"
#include "svm/linear_svm.hpp"
#include "svm/mining.hpp"

namespace {

double svmValAccuracy(const pcnn::svm::WindowExtractor& extract,
                      const pcnn::bench::BenchDataset& data,
                      const std::vector<pcnn::vision::Image>& valWindows,
                      const std::vector<int>& valLabels) {
  using namespace pcnn;
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  for (const auto& w : data.trainPositives) {
    x.push_back(extract(w));
    y.push_back(1);
  }
  for (const auto& w : data.trainNegatives) {
    x.push_back(extract(w));
    y.push_back(-1);
  }
  svm::LinearSvm model;
  model.train(x, y);
  std::vector<std::vector<float>> vx;
  for (const auto& w : valWindows) vx.push_back(extract(w));
  return model.accuracy(vx, valLabels);
}

}  // namespace

int main() {
  using namespace pcnn;
  std::printf("=== Ablation A1: L2 block normalization on/off ===\n\n");
  const bench::BenchDataset data = bench::makeBenchDataset(140, 0, 0, 0, 0, 77);
  vision::SyntheticPersonDataset synth;
  Rng rng(17);
  std::vector<vision::Image> valWindows;
  std::vector<int> valLabels;
  for (int i = 0; i < 100; ++i) {
    valWindows.push_back(synth.positiveWindow(rng));
    valLabels.push_back(1);
    valWindows.push_back(synth.negativeWindow(rng));
    valLabels.push_back(-1);
  }

  std::printf("%-28s %12s %12s\n", "extractor", "l2norm", "no norm");

  {
    hog::HogParams on;   // defaults: l2Normalize = true
    hog::HogParams off = on;
    off.l2Normalize = false;
    const hog::HogExtractor hogOn(on), hogOff(off);
    std::printf("%-28s %12.3f %12.3f\n", "classic HoG (9-bin)",
                svmValAccuracy([&](const vision::Image& w) {
                  return hogOn.windowDescriptor(w);
                }, data, valWindows, valLabels),
                svmValAccuracy([&](const vision::Image& w) {
                  return hogOff.windowDescriptor(w);
                }, data, valWindows, valLabels));
  }
  {
    napprox::NApproxParams on;  // l2Normalize = true
    napprox::NApproxParams off = on;
    off.l2Normalize = false;
    const napprox::NApproxHog hogOn(on), hogOff(off);
    std::printf("%-28s %12.3f %12.3f\n", "NApprox (18-bin count)",
                svmValAccuracy([&](const vision::Image& w) {
                  return hogOn.windowDescriptor(w);
                }, data, valWindows, valLabels),
                svmValAccuracy([&](const vision::Image& w) {
                  return hogOff.windowDescriptor(w);
                }, data, valWindows, valLabels));
  }
  std::printf("\nBlock normalization is optional in Figure 1; the Eedn path "
              "elides it (costly on TrueNorth) at a modest accuracy cost.\n");
  return 0;
}
