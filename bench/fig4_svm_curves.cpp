// Figure 4: miss-rate / false-positive curves with SVM classifiers for the
// three feature extractors -- FPGA-HoG (9-bin weighted voting, fixed-point),
// NApprox(fp) (18-bin count voting, float), and NApprox (TrueNorth-
// compatible reduced precision). All use 2x2-cell L2 block normalization.
// Expected shape (paper): the three curves nearly coincide -- all three
// extractors produce similar-quality features.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "extract/registry.hpp"
#include "svm/linear_svm.hpp"
#include "svm/mining.hpp"

namespace {

void runSpec(const std::string& spec, const pcnn::bench::BenchDataset& data) {
  using namespace pcnn;
  const auto extractor =
      extract::makeExtractor(spec, extract::FeatureLayout::kBlockNorm);

  // Train the SVM on block descriptors with one hard-negative round. The
  // extractor is shared with the detector below, so mining scans negative
  // scenes over cached per-level cell grids too.
  svm::LinearSvm model;
  svm::MiningParams mining;
  mining.mineThreshold = -0.25f;  // near-boundary windows count as hard
  mining.scan.strideX = 16;
  mining.scan.strideY = 16;
  mining.scan.pyramid.maxLevels = 3;
  const auto miningResult = svm::trainWithHardNegatives(
      model, *extractor, data.trainPositives, data.trainNegatives,
      data.negativeScenes, mining);

  core::GridDetectorParams params;
  params.scoreThreshold = -2.0f;  // keep a wide sweep for the curve
  core::GridDetector detector(params, extractor,
                              [&model](const std::vector<float>& f) {
                                return static_cast<float>(model.decision(f));
                              });
  const auto results = bench::evaluateDetector(detector, data.testScenes);
  const auto info = extractor->info();
  std::printf("[%s] %s, %d bins; mined %d hard negatives, train accuracy "
              "%.3f\n",
              spec.c_str(), info.precision.c_str(), extractor->bins(),
              miningResult.minedNegatives, miningResult.finalTrainAccuracy);
  bench::printCurve("miss rate vs FPPI (" + spec + ")",
                    eval::missRateCurve(results));
}

}  // namespace

int main() {
  using namespace pcnn;
  std::printf("=== Figure 4: SVM classifiers on FPGA-HoG / NApprox(fp) / "
              "NApprox ===\n\n");
  const bench::BenchDataset data =
      bench::makeBenchDataset(120, 2, 10, 288, 224, 44);

  // Fig. 4's three extractors, as registry specs: the fixed-point FPGA
  // baseline, float NApprox, and TrueNorth-quantized NApprox (64-spike
  // rate-coded inputs). All share the block-normalized SVM feature layout.
  for (const std::string spec :
       {"fixedpoint", "napprox", "napprox:64spike"}) {
    runSpec(spec, data);
  }

  std::printf("Expected shape (paper): the three curves nearly coincide.\n");
  return 0;
}
