// Figure 4: miss-rate / false-positive curves with SVM classifiers for the
// three feature extractors -- FPGA-HoG (9-bin weighted voting, fixed-point),
// NApprox(fp) (18-bin count voting, float), and NApprox (TrueNorth-
// compatible reduced precision). All use 2x2-cell L2 block normalization.
// Expected shape (paper): the three curves nearly coincide -- all three
// extractors produce similar-quality features.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "hog/fixed_point.hpp"
#include "hog/hog.hpp"
#include "napprox/napprox.hpp"
#include "napprox/quantized.hpp"
#include "svm/linear_svm.hpp"
#include "svm/mining.hpp"

namespace {

using pcnn::hog::CellGrid;
using pcnn::vision::Image;

struct ExtractorConfig {
  std::string name;
  pcnn::core::GridExtractor grid;
  pcnn::core::WindowFeatureAssembler assembler;
};

void runConfig(const ExtractorConfig& config,
               const pcnn::bench::BenchDataset& data) {
  using namespace pcnn;

  // Train the SVM on block descriptors with one hard-negative round. The
  // grid/assembler pair is shared with the detector below, so mining scans
  // negative scenes over cached per-level cell grids too.
  svm::LinearSvm model;
  svm::MiningParams mining;
  mining.mineThreshold = -0.25f;  // near-boundary windows count as hard
  mining.scan.strideX = 16;
  mining.scan.strideY = 16;
  mining.scan.pyramid.maxLevels = 3;
  svm::GridExtractorPair gridExtractor{config.grid, config.assembler, 8};
  const auto miningResult = svm::trainWithHardNegatives(
      model, gridExtractor, data.trainPositives, data.trainNegatives,
      data.negativeScenes, mining);

  core::GridDetectorParams params;
  params.scoreThreshold = -2.0f;  // keep a wide sweep for the curve
  core::GridDetector detector(params, config.grid, config.assembler,
                              [&model](const std::vector<float>& f) {
                                return static_cast<float>(model.decision(f));
                              });
  const auto results = bench::evaluateDetector(detector, data.testScenes);
  std::printf("[%s] mined %d hard negatives, train accuracy %.3f\n",
              config.name.c_str(), miningResult.minedNegatives,
              miningResult.finalTrainAccuracy);
  bench::printCurve("miss rate vs FPPI (" + config.name + ")",
                    eval::missRateCurve(results));
}

}  // namespace

int main() {
  using namespace pcnn;
  std::printf("=== Figure 4: SVM classifiers on FPGA-HoG / NApprox(fp) / "
              "NApprox ===\n\n");
  const bench::BenchDataset data =
      bench::makeBenchDataset(120, 2, 10, 288, 224, 44);

  // FPGA-HoG: fixed-point 9-bin weighted voting.
  const auto fpga = std::make_shared<hog::FixedPointHog>();
  {
    // Grid path: integer cell histograms dequantized; block assembly with
    // the float assembler (L2 norm) so the detector shares plumbing.
    hog::HogParams blockParams;
    blockParams.numBins = 9;
    ExtractorConfig config{
        "FPGA-HoG l2norm, 9 bins, weighted",
        [fpga](const Image& img) {
          const auto intGrid = fpga->computeCells(img);
          CellGrid grid;
          grid.cellsX = intGrid.cellsX;
          grid.cellsY = intGrid.cellsY;
          grid.bins = intGrid.bins;
          grid.data.assign(intGrid.data.begin(), intGrid.data.end());
          return grid;
        },
        core::blockFeatureAssembler(blockParams, 8, 16)};
    runConfig(config, data);
  }

  // NApprox(fp): float 18-bin count voting.
  const auto napproxFp = std::make_shared<napprox::NApproxHog>();
  {
    hog::HogParams blockParams;
    blockParams.numBins = 18;
    blockParams.signedOrientation = true;
    ExtractorConfig config{
        "NApprox(fp) l2norm, 18 bins, count",
        [napproxFp](const Image& img) { return napproxFp->computeCells(img); },
        core::blockFeatureAssembler(blockParams, 8, 16)};
    runConfig(config, data);
  }

  // NApprox: TrueNorth-compatible quantization (64-spike inputs).
  const auto quantized = std::make_shared<napprox::QuantizedNApproxHog>();
  {
    hog::HogParams blockParams;
    blockParams.numBins = 18;
    blockParams.signedOrientation = true;
    ExtractorConfig config{
        "NApprox l2norm (64-spike quantized)",
        [quantized](const Image& img) { return quantized->computeCells(img); },
        core::blockFeatureAssembler(blockParams, 8, 16)};
    runConfig(config, data);
  }

  std::printf("Expected shape (paper): the three curves nearly coincide.\n");
  return 0;
}
