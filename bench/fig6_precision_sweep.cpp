// Figure 6: classifier accuracy and miss rate as a function of the Parrot
// HoG input representation, swept from 32-spike stochastic coding down to
// 1-spike. "Accuracy" follows the paper's usage: performance on the
// validation set of the (auto-generated) training data -- here the
// dominant-bin accuracy of the parrot itself plus the downstream Eedn
// window classifier's accuracy; "miss rate" is the window-level miss rate
// of the Eedn classifier at the zero-score operating point.
// Expected shape (paper): graceful degradation down to a few spikes, with
// low-precision codes remaining usable (which is what makes the 192 mW
// 1-spike deployment of Table 2 viable).
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "extract/backends.hpp"
#include "extract/registry.hpp"
#include "parrot/generator.hpp"

int main() {
  using namespace pcnn;
  std::printf("=== Figure 6: Parrot input-precision sweep ===\n\n");

  const bench::BenchDataset data =
      bench::makeBenchDataset(120, 0, 0, 0, 0, 66);
  vision::SyntheticPersonDataset synth;
  Rng rng(9);
  std::vector<vision::Image> valWindows;
  std::vector<int> valLabels;
  for (int i = 0; i < 80; ++i) {
    valWindows.push_back(synth.positiveWindow(rng));
    valLabels.push_back(1);
    valWindows.push_back(synth.negativeWindow(rng));
    valLabels.push_back(-1);
  }

  // Train the parrot once with exact inputs (deployment precision is a
  // representation choice, not a retraining): registry "parrot" is the
  // exact variant, and setInputSpikes re-codes it per sweep step.
  extract::ExtractorOptions options;
  options.layout = extract::FeatureLayout::kFlatCell;
  options.seed = 2017;
  const auto extractor = extract::makeExtractor("parrot", options);
  std::printf("training parrot (exact inputs)...\n\n");
  extractor->pretrain(4000, 16, 0.005f);

  // The parrot-specific dominant-bin diagnostic needs the concrete backend.
  const auto parrotBackend =
      std::dynamic_pointer_cast<extract::ParrotBackend>(extractor);
  const parrot::OrientedSampleGenerator generator;

  std::printf("%8s  %18s  %18s  %12s\n", "spikes", "parrot bin acc",
              "classifier acc", "miss rate");
  for (int spikes : {32, 16, 8, 4, 2, 1}) {
    extractor->setInputSpikes(spikes);

    // Downstream Eedn classifier trained on features at this precision.
    eedn::EednClassifierConfig config;
    config.inputSize = 8 * 16 * 18;
    config.groupInputSize = 126;
    config.outputsPerGroup = 12;
    config.hiddenWidths = {120};
    config.outputPopulation = 8;
    config.inputScale = 1.0f / 64.0f;  // cell votes arrive as spike rates
    config.seed = 5;
    core::PartitionedPipeline pipeline(extractor, config);
    // Three stochastic-coding realizations per window so the classifier
    // learns the coding noise rather than one draw of it.
    std::vector<vision::Image> windows;
    std::vector<int> labels;
    for (int rep = 0; rep < 3; ++rep) {
      for (const auto& w : data.trainPositives) {
        windows.push_back(w);
        labels.push_back(1);
      }
      for (const auto& w : data.trainNegatives) {
        windows.push_back(w);
        labels.push_back(-1);
      }
    }
    pipeline.trainClassifier(windows, labels, 25, 0.05f);

    int misses = 0, positives = 0;
    int correct = 0;
    for (std::size_t i = 0; i < valWindows.size(); ++i) {
      const int predicted = pipeline.predict(valWindows[i]);
      if (predicted == valLabels[i]) ++correct;
      if (valLabels[i] > 0) {
        ++positives;
        if (predicted < 0) ++misses;
      }
    }
    const double accuracy =
        static_cast<double>(correct) / static_cast<double>(valWindows.size());
    const double missRate =
        positives > 0 ? static_cast<double>(misses) / positives : 0.0;
    std::printf("%8d  %18.3f  %18.3f  %12.3f\n", spikes,
                parrotBackend->parrot().dominantBinAccuracy(generator, 250),
                accuracy, missRate);
  }
  std::printf("\nExpected shape (paper): accuracy degrades gracefully as "
              "spike precision falls. The paper reports even 1-spike coding "
              "as usable; at our (smaller) parrot and classifier scale the "
              "knee sits around 2-4 spikes -- see EXPERIMENTS.md.\n");
  return 0;
}
