// Table 2: estimated power consumption of the HoG feature-extraction
// approaches for full-HD @ 26 fps -- FPGA baseline, NApprox on TrueNorth,
// and Parrot on TrueNorth at 32/4/1-spike stochastic coding. Also reports
// the measured core count of *our* NApprox corelet next to the paper's
// 26-core module, and the abstract's 6.5x-208x power ratio.
#include <cstdio>

#include "extract/registry.hpp"
#include "napprox/corelet.hpp"
#include "napprox/quantized.hpp"
#include "power/power.hpp"

int main() {
  using namespace pcnn;
  std::printf("=== Table 2: power estimation, full-HD @ 26 fps ===\n\n");
  const power::FullHdWorkload workload;
  std::printf("workload: %ld cells/frame (paper: 57,749), %.4g cells/s "
              "(paper: 1.5M)\n\n",
              workload.cellsPerFrame(), workload.cellsPerSecond());

  // Rows come from registry-constructed extractors' own deployment
  // metadata (FeatureExtractor::powerEstimate), one per table2Specs().
  std::printf("%-30s %-18s %10s %10s %12s   %s\n", "Approach",
              "Signal resolution", "modules", "chips", "power", "paper");
  const char* paperValues[] = {"8.6 W (system), 1.12 W (logic)",
                               "40 W, ~650 chips", "6.15 W", "768 mW",
                               "192 mW"};
  int row = 0;
  for (const power::PowerEstimate& e :
       extract::table2FromRegistry(workload)) {
    char powerStr[32];
    if (e.watts >= 1.0) {
      std::snprintf(powerStr, sizeof(powerStr), "%.2f W", e.watts);
    } else {
      std::snprintf(powerStr, sizeof(powerStr), "%.0f mW", e.watts * 1e3);
    }
    if (e.modules > 0) {
      std::printf("%-30s %-18s %10.0f %10.1f %12s   %s\n", e.approach.c_str(),
                  e.signalResolution.c_str(), e.modules, e.chips, powerStr,
                  paperValues[row]);
    } else {
      std::printf("%-30s %-18s %10s %10s %12s   %s\n", e.approach.c_str(),
                  e.signalResolution.c_str(), "-", "-", powerStr,
                  paperValues[row]);
    }
    ++row;
  }

  const auto [low, high] = power::napproxOverParrotRatio(workload);
  std::printf("\nNApprox / Parrot power ratio: %.1fx (32-spike) .. %.0fx "
              "(1-spike); paper quotes 6.5x-208x\n", low, high);

  // Our corelet's measured resources vs the paper's module.
  const napprox::QuantizedNApproxHog model(
      {}, {}, napprox::QuantizedMode::kTickAccurate);
  napprox::NApproxCorelet corelet(model);
  std::printf("\nNApprox module resources: our corelet uses %d cores/cell "
              "(%d ticks/cell); the paper's module uses 26 cores at 15 "
              "cells/s. Table rows above use the paper's module constants;\n"
              "with our 20-core module the NApprox row would be %.1f W.\n",
              corelet.coreCount(), corelet.ticksPerCell(),
              power::TrueNorthPowerModel{}
                  .napprox(workload, 64, corelet.coreCount())
                  .watts);
  return 0;
}
