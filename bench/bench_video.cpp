// Full-HD video detection benchmark: a synthetic 1920x1080 burst (persons
// translating over a textured background) run through
// GridDetector::detectBatch twice per backend --
//   (a) PCNN_TEMPORAL-off semantics (temporal.enabled = false): every frame
//       pays the full single-scene detect() path, the bitwise reference;
//   (b) the temporal path: persistent per-level grids, dirty-tile
//       recomputation, cached window scores.
// Reports per-backend fps for both against the paper's full-HD 26 fps bar
// (Table 2), the dirty-tile hit rate, and the reuse speedup; writes
// BENCH_video.json.
//
// Usage: bench_video [outputPath] [frames] [width] [height] [persons]
//   (the ci.sh smoke runs "bench_video /tmp/out.json 8 320 240 1")
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/detector.hpp"
#include "extract/registry.hpp"
#include "obs/obs.hpp"
#include "vision/video.hpp"

namespace {

using namespace pcnn;
using Clock = std::chrono::steady_clock;

/// A fixed linear scorer of the given dimension; the benchmark measures
/// the scan machinery, not classifier quality.
std::function<float(const std::vector<float>&)> randomScorer(int dim) {
  std::vector<float> weights(static_cast<std::size_t>(dim));
  Rng wrng(7);
  for (auto& w : weights) w = static_cast<float>(wrng.uniform()) - 0.5f;
  return [weights = std::move(weights)](const std::vector<float>& f) {
    float acc = 0.0f;
    const std::size_t n = f.size() < weights.size() ? f.size() : weights.size();
    for (std::size_t i = 0; i < n; ++i) acc += weights[i] * f[i];
    return acc;
  };
}

struct RunResult {
  double ms = 0.0;
  double fps = 0.0;
  long tilesReused = 0;
  long tilesRecomputed = 0;
  long windowsRescored = 0;
  long windowsReused = 0;
};

RunResult runBurst(core::GridDetector& detector,
                   const std::vector<vision::Image>& frames) {
  RunResult r;
  const auto t0 = Clock::now();
  const core::BatchDetectResult batch = detector.detectBatch(frames);
  const auto t1 = Clock::now();
  r.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.fps = r.ms > 0.0 ? 1000.0 * static_cast<double>(frames.size()) / r.ms
                     : 0.0;
  // Burst-level rate next to the per-frame detect.frame_fps gauge the
  // detector maintains; a streaming exporter sampling mid-bench sees the
  // most recent burst's throughput.
  static obs::Gauge& fpsGauge = obs::gauge("video.fps");
  fpsGauge.set(r.fps);
  for (const core::FrameResult& frame : batch.frames) {
    r.tilesReused += frame.stats.tilesReused;
    r.tilesRecomputed += frame.stats.tilesRecomputed;
    r.windowsRescored += frame.stats.windowsRescored;
    r.windowsReused += frame.stats.windowsReused;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outPath = argc > 1 ? argv[1] : "BENCH_video.json";
  const int numFrames = argc > 2 ? std::atoi(argv[2]) : 10;
  const int width = argc > 3 ? std::atoi(argv[3]) : 1920;
  const int height = argc > 4 ? std::atoi(argv[4]) : 1080;
  const int persons = argc > 5 ? std::atoi(argv[5]) : 3;
  constexpr double kPaperFpsBar = 26.0;  // Table 2: full-HD images/s

  bench::printProvenance();

  vision::VideoParams vp;
  vp.width = width;
  vp.height = height;
  vp.numPersons = persons;
  vp.seed = 97;
  vision::SyntheticVideo video(vp);
  std::vector<vision::Image> frames;
  frames.reserve(static_cast<std::size_t>(numFrames));
  for (int f = 0; f < numFrames; ++f) {
    frames.push_back(video.frame(f).image);
  }
  std::printf("video %dx%d, %d frames, %d persons (paper bar: %.0f fps)\n",
              width, height, numFrames, persons, kPaperFpsBar);

  const std::vector<std::string> backends = {"hog", "fixedpoint", "napprox",
                                             "parrot"};
  std::vector<RunResult> off(backends.size()), temporal(backends.size());
  for (std::size_t i = 0; i < backends.size(); ++i) {
    // 6 pyramid levels: what the paper's full-HD analysis assumes.
    core::GridDetectorParams params;
    params.scoreThreshold = 1e9f;  // score every window, keep (almost) none
    params.pyramid.maxLevels = 6;

    {
      core::GridDetectorParams offParams = params;
      offParams.temporal.enabled = false;  // the full-recompute reference
      auto extractor = extract::makeExtractor(
          backends[i], extract::FeatureLayout::kBlockNorm);
      const auto scorer = randomScorer(extractor->featureDim());
      core::GridDetector detector(offParams, extractor, scorer);
      off[i] = runBurst(detector, frames);
    }
    {
      auto extractor = extract::makeExtractor(
          backends[i], extract::FeatureLayout::kBlockNorm);
      const auto scorer = randomScorer(extractor->featureDim());
      core::GridDetector detector(params, extractor, scorer);
      temporal[i] = runBurst(detector, frames);
    }
    const long tiles = temporal[i].tilesReused + temporal[i].tilesRecomputed;
    const double hitRate =
        tiles > 0 ? static_cast<double>(temporal[i].tilesReused) / tiles : 0.0;
    std::printf(
        "  %-12s off: %8.1f ms (%6.2f fps)   temporal: %8.1f ms "
        "(%6.2f fps, %.2fx, tile hit rate %.3f)\n",
        backends[i].c_str(), off[i].ms, off[i].fps, temporal[i].ms,
        temporal[i].fps,
        temporal[i].ms > 0.0 ? off[i].ms / temporal[i].ms : 0.0, hitRate);
  }

  std::FILE* out = std::fopen(outPath.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", outPath.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"scene\": [%d, %d],\n"
               "  \"frames\": %d,\n"
               "  \"persons\": %d,\n"
               "  \"pyramid_levels\": 6,\n"
               "  \"paper_fps_bar\": %.1f,\n"
               "  \"provenance\": %s,\n"
               "  \"backends\": {\n",
               width, height, numFrames, persons, kPaperFpsBar,
               bench::provenanceJson().c_str());
  for (std::size_t i = 0; i < backends.size(); ++i) {
    const long tiles = temporal[i].tilesReused + temporal[i].tilesRecomputed;
    const double hitRate =
        tiles > 0 ? static_cast<double>(temporal[i].tilesReused) / tiles : 0.0;
    std::fprintf(
        out,
        "    \"%s\": {\"off_ms\": %.2f, \"off_fps\": %.3f, "
        "\"temporal_ms\": %.2f, \"temporal_fps\": %.3f, "
        "\"reuse_speedup\": %.2f, \"tile_hit_rate\": %.4f, "
        "\"tiles_reused\": %ld, \"tiles_recomputed\": %ld, "
        "\"windows_rescored\": %ld, \"windows_reused\": %ld}%s\n",
        backends[i].c_str(), off[i].ms, off[i].fps, temporal[i].ms,
        temporal[i].fps,
        temporal[i].ms > 0.0 ? off[i].ms / temporal[i].ms : 0.0, hitRate,
        temporal[i].tilesReused, temporal[i].tilesRecomputed,
        temporal[i].windowsRescored, temporal[i].windowsReused,
        i + 1 < backends.size() ? "," : "");
  }
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", outPath.c_str());

  // With PCNN_TRACE / PCNN_METRICS set, flush the run's spans and counter
  // snapshot here so the paths appear in the bench log (they would also be
  // written at exit).
  if (!obs::configuredTracePath().empty() ||
      !obs::configuredMetricsPath().empty()) {
    obs::writeConfiguredReports();
    std::printf("obs: trace=%s metrics=%s\n",
                obs::configuredTracePath().empty()
                    ? "(off)"
                    : obs::configuredTracePath().c_str(),
                obs::configuredMetricsPath().empty()
                    ? "(off)"
                    : obs::configuredMetricsPath().c_str());
  }
  return 0;
}
