#!/usr/bin/env bash
# Tier-1 verification: configure with src/ warnings promoted to errors,
# build everything, and run the full test suite.
#
# Usage: ./ci.sh [builddir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DPCNN_WERROR=ON
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

echo "ci.sh: build + tests passed"
