#!/usr/bin/env bash
# Tier-1 verification: configure with src/ warnings promoted to errors,
# build everything, and run the full test suite.
#
# Usage: ./ci.sh [builddir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DPCNN_WERROR=ON
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# The fast label again under both kernel dispatch settings: once with the
# batched SIMD kernels (the default) and once with PCNN_SIMD=off forcing
# the scalar reference path, so a vectorization regression in either
# implementation -- or a parity break between them -- fails CI.
ctest --test-dir "$BUILD_DIR" -L fast --output-on-failure -j"$(nproc)"
PCNN_SIMD=off ctest --test-dir "$BUILD_DIR" -L fast --output-on-failure \
  -j"$(nproc)"

# And once with the dense TrueNorth reference engine (the default is the
# event-driven engine), so a regression in either tick loop -- or a parity
# break between them -- fails CI the same way the SIMD re-run does.
PCNN_TN_ENGINE=dense ctest --test-dir "$BUILD_DIR" -L fast \
  --output-on-failure -j"$(nproc)"

# ASan + UBSan tree over the fast, bundle, and video labels
# (PCNN_SANITIZE=ON skippable for quick local iterations: PCNN_SANITIZE=OFF
# ./ci.sh). The fault-injection, corrupt-file and corrupt-bundle regression
# tests are in these labels on purpose -- they feed the deserializers and
# the simulator deliberately hostile input, so they run memory- and
# UB-checked on every CI pass; the video label adds the temporal-reuse
# cache (persistent grids spliced in place, parallel rescoring) to the same
# scrutiny.
if [[ "${PCNN_SANITIZE:-ON}" == "ON" ]]; then
  cmake -B "$BUILD_DIR-asan" -S . -DPCNN_WERROR=ON -DPCNN_SANITIZE=ON
  cmake --build "$BUILD_DIR-asan" -j"$(nproc)"
  ctest --test-dir "$BUILD_DIR-asan" -L 'fast|bundle|video|serve' \
    --output-on-failure -j"$(nproc)"

  # ThreadSanitizer tree over the fast + serve labels: the serving layer
  # hands frames, promises, and ladder state between the admission threads
  # and the worker, so data races there must fail CI, not surface as
  # corrupted responses under production load.
  cmake -B "$BUILD_DIR-tsan" -S . -DPCNN_WERROR=ON -DPCNN_SANITIZE=thread
  cmake --build "$BUILD_DIR-tsan" -j"$(nproc)"
  ctest --test-dir "$BUILD_DIR-tsan" -L 'fast|serve' \
    --output-on-failure -j"$(nproc)"
fi

# Observability smoke: a traced detection run must produce valid, non-empty
# Chrome-trace and metrics JSON with the spans/counters the layer promises,
# and a run without the env vars must produce no report files at all.
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
PD_BIN="$(cd "$BUILD_DIR" && pwd)/examples/pedestrian_detection"
PR_BIN="$(cd "$BUILD_DIR" && pwd)/examples/power_report"
PCNN_TRACE="$OBS_DIR/trace.json" PCNN_METRICS="$OBS_DIR/metrics.json" \
  "$PD_BIN" 1 7 hog >/dev/null
python3 - "$OBS_DIR/trace.json" "$OBS_DIR/metrics.json" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = {e["name"] for e in trace["traceEvents"]}
assert trace["traceEvents"], "trace has no events"
for name in ("detect.pyramid", "detect.cellGrid", "detect.scan"):
    assert name in events, f"missing span {name}: {sorted(events)}"
metrics = json.load(open(sys.argv[2]))
assert metrics["counters"].get("windows_scanned", 0) > 0, metrics["counters"]
print("obs smoke: trace+metrics JSON valid "
      f"({len(trace['traceEvents'])} events, "
      f"{metrics['counters']['windows_scanned']} windows scanned)")
EOF
PCNN_METRICS="$OBS_DIR/tn_metrics.json" "$PR_BIN" >/dev/null
python3 - "$OBS_DIR/tn_metrics.json" <<'EOF'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
assert counters.get("tn.spikes", 0) > 0, counters
assert counters.get("tn.ticks", 0) > 0, counters
print(f"obs smoke: tn counters non-zero (spikes={counters['tn.spikes']})")
EOF
# Disabled mode: no report env vars -> no report files may appear, even
# with a streaming period configured (a period without PCNN_METRICS must
# not start the exporter or touch the filesystem).
(cd "$OBS_DIR" && PCNN_METRICS_PERIOD_MS=25 "$PD_BIN" 1 7 hog >/dev/null)
LEFTOVER="$(find "$OBS_DIR" -name '*.json' ! -name trace.json \
  ! -name metrics.json ! -name tn_metrics.json)"
test -z "$LEFTOVER" || { echo "unexpected obs output: $LEFTOVER"; exit 1; }

# Streaming smoke: a periodic export over a real detection run must append
# multiple independently parseable NDJSON window lines with increasing seq
# and per-window deltas, and the exit-time path must not double-write a
# cumulative report into the stream.
PCNN_METRICS="$OBS_DIR/stream.ndjson" PCNN_METRICS_PERIOD_MS=25 \
  "$PD_BIN" 2 7 hog >/dev/null
python3 - "$OBS_DIR/stream.ndjson" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert len(lines) >= 2, f"expected >=2 windows, got {len(lines)}"
windows = [json.loads(l) for l in lines]
seqs = [w["seq"] for w in windows]
assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs), seqs
assert all("counters" in w or "gauges" in w for w in windows), windows[0]
scanned = sum(w.get("counters", {}).get("windows_scanned", 0)
              for w in windows)
assert scanned > 0, "no windows_scanned deltas streamed"
print(f"stream smoke: {len(lines)} NDJSON windows, seq {seqs[0]}..{seqs[-1]}, "
      f"{scanned} windows_scanned streamed")
EOF

# Prometheus smoke: a .prom metrics path must yield valid text exposition
# -- exactly one `# TYPE` per metric, and every sample line belonging to a
# declared metric.
PCNN_METRICS="$OBS_DIR/metrics.prom" "$PD_BIN" 1 7 hog >/dev/null
python3 - "$OBS_DIR/metrics.prom" <<'EOF'
import sys
declared = []
samples = 0
for line in open(sys.argv[1]):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("# TYPE "):
        name = line.split()[2]
        assert name not in declared, f"duplicate TYPE for {name}"
        declared.append(name)
        continue
    assert not line.startswith("#"), f"unexpected comment: {line}"
    assert any(line.startswith(n) for n in declared), \
        f"sample without TYPE declaration: {line}"
    samples += 1
assert "pcnn_windows_scanned" in declared, declared
assert any(n.endswith("_us") for n in declared), declared
print(f"prom smoke: {len(declared)} metrics declared, {samples} samples")
EOF

# Fault + flight smoke: a fault-injected robustness run with the flight
# recorder armed must leave a dump whose ring tail holds both the
# tn.faults.* count events and the degraded detect.level spans -- the
# incident-capture path end to end. (Under PCNN_FAULTS the report's
# zero-fault bitwise check is reported but not enforced in its exit
# code; the env plan reaches every network including the baseline.)
RR_BIN="$(cd "$BUILD_DIR" && pwd)/examples/robustness_report"
PCNN_FAULTS="drop=0.05,seed=7" PCNN_FLIGHT="$OBS_DIR/flight.json" \
  "$RR_BIN" "$OBS_DIR/robustness.json" >/dev/null
python3 - "$OBS_DIR/flight.json" "$OBS_DIR/robustness.json" <<'EOF'
import json, sys
dump = json.load(open(sys.argv[1]))
events = dump["events"]
assert events, "flight dump has no events"
faults = [e for e in events
          if e["kind"] == "count" and e["name"].startswith("tn.faults.")]
assert faults, sorted({e["name"] for e in events})
degraded = [e for e in events if e["kind"] == "begin"
            and e["name"] in ("detect.level", "detect.level.degraded")]
assert degraded, sorted({e["name"] for e in events})
ts = [e["ts_us"] for e in events]
assert ts == sorted(ts), "flight events not time-ordered"
rob = json.load(open(sys.argv[2]))
assert rob["degraded_detection"]["levels_skipped"] > 0, rob
print(f"flight smoke: {len(events)} events ({len(faults)} tn fault counts, "
      f"{len(degraded)} degraded-path spans), reason={dump['reason']}")
EOF

# Bundle smoke: train a tiny pipeline, pack it into a model bundle, verify
# its content hash and score parity across two independent loads, then run
# the detection example against it (the deployment path -- no in-process
# training). The whole train-once/reload-by-name contract, end to end.
BUNDLE="$OBS_DIR/smoke.pcnb"
BT_BIN="$(cd "$BUILD_DIR" && pwd)/examples/bundle_tool"
"$BT_BIN" pack "$BUNDLE" hog --windows 30 >/dev/null
"$BT_BIN" inspect "$BUNDLE" >/dev/null
"$BT_BIN" verify "$BUNDLE"
PCNN_BUNDLE="$BUNDLE" "$PD_BIN" 1 7 >/dev/null
echo "bundle smoke: pack + verify + bundle-loaded detection passed"

# Video smoke: bench_video on a tiny burst (8 frames at 320x240) must emit
# per-frame detect.frame spans and actually reuse tiles (nonzero
# detect.tiles_reused counter) -- the temporal path working end to end, not
# just compiling.
BV_BIN="$(cd "$BUILD_DIR" && pwd)/bench/bench_video"
PCNN_TRACE="$OBS_DIR/video_trace.json" \
  PCNN_METRICS="$OBS_DIR/video_metrics.json" \
  "$BV_BIN" "$OBS_DIR/video_bench.json" 8 320 240 1 >/dev/null
python3 - "$OBS_DIR/video_trace.json" "$OBS_DIR/video_metrics.json" \
  "$OBS_DIR/video_bench.json" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = {e["name"] for e in trace["traceEvents"]}
for name in ("detect.batch", "detect.frame", "detect.level"):
    assert name in events, f"missing span {name}: {sorted(events)}"
counters = json.load(open(sys.argv[2]))["counters"]
assert counters.get("detect.frames", 0) > 0, counters
assert counters.get("detect.tiles_reused", 0) > 0, counters
assert counters.get("detect.tiles_recomputed", 0) > 0, counters
bench = json.load(open(sys.argv[3]))
assert bench["backends"], bench
for name, row in bench["backends"].items():
    assert row["temporal_fps"] > 0, (name, row)
print("video smoke: detect.frame spans + tile reuse counters present "
      f"(reused={counters['detect.tiles_reused']}, "
      f"recomputed={counters['detect.tiles_recomputed']})")
EOF

# Serve smoke: bench_serve at a heavily overloaded point with the metrics
# stream on must show the admission ladder actually working -- rejected
# requests, a serve.level transition observable in the streamed windows --
# and write a well-formed BENCH_serve.json on the shared provenance schema.
BS_BIN="$(cd "$BUILD_DIR" && pwd)/bench/bench_serve"
PCNN_METRICS="$OBS_DIR/serve_stream.ndjson" PCNN_METRICS_PERIOD_MS=25 \
  "$BS_BIN" "$OBS_DIR/serve_bench.json" 40 320 240 smoke >/dev/null
python3 - "$OBS_DIR/serve_stream.ndjson" "$OBS_DIR/serve_bench.json" <<'EOF'
import json, sys
windows = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert windows, "no metrics windows streamed"
rejected = sum(w.get("counters", {}).get("serve.rejected", 0)
               for w in windows)
assert rejected > 0, "overloaded run never rejected at admission"
transitions = sum(w.get("counters", {}).get("serve.level.transitions", 0)
                  for w in windows)
assert transitions > 0, "no serve.level transition in the metrics windows"
levels = [w["gauges"]["serve.level"] for w in windows
          if "serve.level" in w.get("gauges", {})]
assert levels and max(levels) >= 1, f"ladder never left full quality: {levels}"
bench = json.load(open(sys.argv[2]))
assert bench["bench"] == "serve" and "provenance" in bench, bench.keys()
assert bench["points"], "no offered-load points"
overloaded = bench["points"][-1]
assert overloaded["rejected"] > 0 and overloaded["degraded"] > 0, overloaded
print(f"serve smoke: {rejected} rejected, {transitions} ladder transitions "
      f"(max level {max(levels):.0f}) across {len(windows)} windows; "
      f"overloaded point shed {overloaded['shed_rate']:.0%}")
EOF

echo "ci.sh: build + tests (incl. scalar-dispatch + dense-engine + asan fast|bundle|video|serve and tsan fast|serve re-runs + obs, stream, prom, flight, bundle, video & serve smoke) passed"
