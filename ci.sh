#!/usr/bin/env bash
# Tier-1 verification: configure with src/ warnings promoted to errors,
# build everything, and run the full test suite.
#
# Usage: ./ci.sh [builddir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DPCNN_WERROR=ON
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# The fast label again under both kernel dispatch settings: once with the
# batched SIMD kernels (the default) and once with PCNN_SIMD=off forcing
# the scalar reference path, so a vectorization regression in either
# implementation -- or a parity break between them -- fails CI.
ctest --test-dir "$BUILD_DIR" -L fast --output-on-failure -j"$(nproc)"
PCNN_SIMD=off ctest --test-dir "$BUILD_DIR" -L fast --output-on-failure \
  -j"$(nproc)"

echo "ci.sh: build + tests (incl. scalar-dispatch fast re-run) passed"
